// Package dnsserver implements a UDP authoritative DNS server host: a
// serve loop over a net.PacketConn that parses queries with dnsmsg, hands
// them to a Handler, and writes responses, with per-server metrics.
//
// It is the transport layer for the mapping system's authoritative name
// servers (§2.2 component 3): handlers implement the mapping behaviour,
// this package owns sockets, concurrency and message hygiene.
//
// The serve loop is built for the paper's query rates (§5: millions of
// queries per second platform-wide): a small set of reader goroutines
// recycle packet buffers through a sync.Pool and feed a bounded worker
// pool, so the steady-state path performs no per-datagram allocation for
// buffers, goroutines, or wire encoding.
package dnsserver

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eum/internal/dnsmsg"
	"eum/internal/telemetry"
)

// Handler answers DNS queries. Implementations must be safe for concurrent
// use. Returning nil drops the query (no response), which a handler may use
// for malformed or abusive traffic.
//
// The query message is only valid for the duration of the call: the server
// recycles it once ServeDNS returns. Handlers that need query state beyond
// the call must copy it (the response returned may freely reference the
// query's strings, which are immutable).
type Handler interface {
	ServeDNS(remote netip.AddrPort, query *dnsmsg.Message) *dnsmsg.Message
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(remote netip.AddrPort, query *dnsmsg.Message) *dnsmsg.Message

// ServeDNS implements Handler.
func (f HandlerFunc) ServeDNS(remote netip.AddrPort, q *dnsmsg.Message) *dnsmsg.Message {
	return f(remote, q)
}

// Metrics counts server activity. All fields are updated atomically and
// may be read at any time.
type Metrics struct {
	// Queries is the number of well-formed queries received.
	Queries atomic.Uint64
	// Responses is the number of responses sent.
	Responses atomic.Uint64
	// Malformed is the number of datagrams that failed to parse.
	Malformed atomic.Uint64
	// Dropped is the number of queries the handler chose not to answer.
	Dropped atomic.Uint64
	// Shed is the number of datagrams rejected at enqueue because the
	// pending-work queue was full (ShedDrop and ShedRefuse policies).
	Shed atomic.Uint64
	// DeadlineDrops is the number of queued queries discarded because they
	// aged past the serve deadline before a worker picked them up.
	DeadlineDrops atomic.Uint64
	// RateLimited is the number of queries suppressed by response-rate
	// limiting (see Config.RRLRate).
	RateLimited atomic.Uint64
	// Slips is the subset of RateLimited answered with a minimal TC=1
	// response so legitimate clients can retry over TCP.
	Slips atomic.Uint64
	// HandlerPanics is the number of handler panics recovered by the serve
	// loop (each answered with SERVFAIL).
	HandlerPanics atomic.Uint64
}

// ShedPolicy selects what happens to a datagram that arrives while the
// pending-work queue is full — the server's explicit overload posture.
type ShedPolicy int

const (
	// ShedBlock: readers block until a worker frees a slot. Backpressure
	// lands in the kernel socket buffer, which drops datagrams silently
	// once it fills. This is the legacy default.
	ShedBlock ShedPolicy = iota
	// ShedDrop: the datagram is discarded immediately and counted, keeping
	// readers draining the socket so the kernel buffer holds fresh traffic
	// instead of a stale backlog.
	ShedDrop
	// ShedRefuse: as ShedDrop, but well-formed queries get a minimal
	// REFUSED response so resolvers fail over to another authority at once
	// instead of timing out.
	ShedRefuse
)

// String names the policy (the inverse of ParseShedPolicy).
func (p ShedPolicy) String() string {
	switch p {
	case ShedBlock:
		return "block"
	case ShedDrop:
		return "drop"
	case ShedRefuse:
		return "refuse"
	}
	return fmt.Sprintf("ShedPolicy(%d)", int(p))
}

// ParseShedPolicy maps a config/flag string to a ShedPolicy.
func ParseShedPolicy(s string) (ShedPolicy, error) {
	switch s {
	case "", "block":
		return ShedBlock, nil
	case "drop":
		return ShedDrop, nil
	case "refuse":
		return ShedRefuse, nil
	}
	return 0, fmt.Errorf("dnsserver: unknown shed policy %q (want block, drop or refuse)", s)
}

// maxAdvertisedUDPSize caps the EDNS UDP payload size the server honours.
// RFC 6891 §6.2.5 recommends 4096 octets as the upper bound of what is
// reliably deliverable; clients advertising more are clamped rather than
// trusted, bounding response buffers and fragmentation exposure.
const maxAdvertisedUDPSize = 4096

// maxPacketSize is the read buffer size: the largest UDP datagram.
const maxPacketSize = 65535

// Config tunes the server's concurrency model. The zero value selects the
// pooled defaults.
type Config struct {
	// Readers is the number of goroutines blocked in ReadFrom on the
	// socket. More than one keeps the socket drained while packets are
	// being dispatched. Default 2.
	Readers int
	// Workers is the number of handler goroutines draining the packet
	// queue. Mapping decisions are CPU-bound, so the default is
	// GOMAXPROCS.
	Workers int
	// QueueDepth bounds the pending-packet channel. When the queue is
	// full, readers block — backpressure lands in the kernel socket
	// buffer, which sheds load by dropping datagrams (the correct
	// behaviour for DNS over UDP). Default 4x Workers.
	QueueDepth int
	// GoroutinePerPacket restores the legacy spawn-per-datagram serve
	// loop. It exists so benchmarks can compare the pooled loop against
	// the old model; production servers should leave it false.
	GoroutinePerPacket bool
	// OnOverload selects what happens to datagrams arriving while the
	// queue is full. Default ShedBlock (kernel-buffer backpressure).
	OnOverload ShedPolicy
	// ServeDeadline bounds how long a query may wait in the queue before a
	// worker starts on it; overdue queries are dropped (DeadlineDrops), on
	// the theory that the resolver has already retried or failed over and
	// a late answer only wastes a worker. Zero disables the deadline.
	ServeDeadline time.Duration
	// RRLRate enables response-rate limiting when positive: each source
	// prefix (IPv4 /24, IPv6 /56) is allowed this many responses per
	// second, smoothed by a token-bucket (GCRA) with RRLBurst tolerance.
	// Rate-limited queries are dropped except every RRLSlip-th one, which
	// gets a minimal TC=1 response so legitimate clients behind the prefix
	// can fall back to TCP (the standard RRL "slip" escape hatch).
	RRLRate float64
	// RRLBurst is the burst allowance in responses. Default 8.
	RRLBurst int
	// RRLSlip answers every n-th rate-limited query with TC=1; 0 uses the
	// default of 2, negative disables slipping entirely.
	RRLSlip int
}

func (c Config) withDefaults() Config {
	if c.Readers <= 0 {
		c.Readers = 2
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.RRLBurst <= 0 {
		c.RRLBurst = 8
	}
	if c.RRLSlip == 0 {
		c.RRLSlip = 2
	}
	return c
}

// packet is one received datagram travelling from a reader to a worker.
// buf is a pooled full-size buffer (passed by pointer so re-pooling it
// does not re-box the slice header); the datagram occupies (*buf)[:n].
// enq is the enqueue instant (unix nanoseconds), stamped only when a serve
// deadline is configured.
type packet struct {
	buf   *[]byte
	n     int
	raddr netip.AddrPort
	enq   int64
}

// Server is a UDP DNS server.
type Server struct {
	conn net.PacketConn
	// udpConn is conn when it is a *net.UDPConn, enabling the
	// allocation-free ReadFromUDPAddrPort/WriteToUDPAddrPort pair.
	udpConn *net.UDPConn
	handler Handler
	cfg     Config
	// rrl is the per-source-prefix response-rate limiter, nil unless
	// Config.RRLRate is positive.
	rrl *rateLimiter
	// latency, when non-nil, records per-query handler latency (unpack
	// through response write). Set by RegisterMetrics before Serve.
	latency *telemetry.Histogram

	// Metrics exposes live counters.
	Metrics Metrics

	bufPool  sync.Pool // *[]byte, len maxPacketSize
	packPool sync.Pool // *[]byte, len 0: response wire buffers
	msgPool  sync.Pool // *dnsmsg.Message: recycled query messages

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup // the serve loop and its in-flight packets
}

// Listen binds a UDP socket on addr (e.g. "127.0.0.1:0") and returns a
// server with default pooled concurrency, ready to Serve. The handler must
// not be nil.
func Listen(addr string, h Handler) (*Server, error) {
	return ListenConfig(addr, h, Config{})
}

// ListenConfig is Listen with an explicit concurrency configuration.
func ListenConfig(addr string, h Handler, cfg Config) (*Server, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: %w", err)
	}
	s, err := NewConn(conn, h, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return s, nil
}

// NewConn builds a server over an already-open packet connection — the
// entry point for tests that interpose a fault-injecting transport (see
// internal/faultnet) between the server and the wire. The server owns the
// connection from here on; Close closes it.
func NewConn(conn net.PacketConn, h Handler, cfg Config) (*Server, error) {
	if h == nil {
		return nil, errors.New("dnsserver: nil handler")
	}
	if conn == nil {
		return nil, errors.New("dnsserver: nil conn")
	}
	s := &Server{conn: conn, handler: h, cfg: cfg.withDefaults()}
	s.udpConn, _ = conn.(*net.UDPConn)
	if s.cfg.RRLRate > 0 {
		s.rrl = newRateLimiter(s.cfg.RRLRate, s.cfg.RRLBurst, s.cfg.RRLSlip)
	}
	s.bufPool.New = func() any {
		b := make([]byte, maxPacketSize)
		return &b
	}
	s.packPool.New = func() any {
		b := make([]byte, 0, maxAdvertisedUDPSize)
		return &b
	}
	s.msgPool.New = func() any { return &dnsmsg.Message{} }
	return s, nil
}

// Addr returns the bound address, for clients to dial.
func (s *Server) Addr() net.Addr { return s.conn.LocalAddr() }

// Serve reads queries until the server is closed, dispatching them to the
// configured worker pool (or, in legacy mode, one goroutine per packet).
// Serve returns nil after Close.
func (s *Server) Serve() error {
	if s.cfg.GoroutinePerPacket {
		return s.servePerPacket()
	}
	// Close waits on wg, so it does not return until queued packets have
	// drained and every worker has exited.
	s.wg.Add(1)
	defer s.wg.Done()
	queue := make(chan packet, s.cfg.QueueDepth)

	var workers sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for pkt := range queue {
				if pkt.enq != 0 && time.Now().UnixNano()-pkt.enq > int64(s.cfg.ServeDeadline) {
					// The query aged out in the queue: the resolver has
					// retried or failed over by now, so a late answer only
					// wastes the worker.
					s.Metrics.DeadlineDrops.Add(1)
				} else {
					s.handlePacket(pkt.raddr, (*pkt.buf)[:pkt.n])
				}
				s.bufPool.Put(pkt.buf)
			}
		}()
	}

	var readers sync.WaitGroup
	errs := make(chan error, s.cfg.Readers)
	for i := 0; i < s.cfg.Readers; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			errs <- s.readLoop(queue)
		}()
	}
	readers.Wait()
	close(queue)
	workers.Wait()

	var firstErr error
	for i := 0; i < s.cfg.Readers; i++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// readLoop pulls datagrams off the socket into pooled buffers until the
// socket errors (normally: is closed). It returns nil on clean shutdown.
func (s *Server) readLoop(queue chan<- packet) error {
	for {
		bp := s.bufPool.Get().(*[]byte)
		n, raddr, err := s.readFrom(*bp)
		if err != nil {
			s.bufPool.Put(bp)
			if s.isClosed() {
				return nil
			}
			return fmt.Errorf("dnsserver: read: %w", err)
		}
		if !raddr.IsValid() {
			s.bufPool.Put(bp)
			continue
		}
		pkt := packet{buf: bp, n: n, raddr: raddr}
		if s.cfg.ServeDeadline > 0 {
			pkt.enq = time.Now().UnixNano()
		}
		if s.cfg.OnOverload == ShedBlock {
			queue <- pkt
			continue
		}
		select {
		case queue <- pkt:
		default:
			// Queue full: shed here, explicitly and counted, instead of
			// letting the backlog smear into the kernel buffer. The reader
			// goes straight back to ReadFrom, so the socket keeps draining
			// fresh traffic.
			s.Metrics.Shed.Add(1)
			if s.cfg.OnOverload == ShedRefuse {
				s.refuse(raddr, (*bp)[:n])
			}
			s.bufPool.Put(bp)
		}
	}
}

// refuse answers a shed datagram with a minimal REFUSED response, so the
// resolver fails over to another authority immediately instead of burning
// its timeout. Runs on the shed path only; allocations are acceptable.
func (s *Server) refuse(raddr netip.AddrPort, pkt []byte) {
	query := s.msgPool.Get().(*dnsmsg.Message)
	defer s.msgPool.Put(query)
	if err := dnsmsg.UnpackInto(query, pkt); err != nil || query.Response {
		return
	}
	resp := query.Reply()
	resp.RCode = dnsmsg.RCodeRefused
	wire, err := resp.Pack()
	if err != nil {
		return
	}
	if s.writeTo(wire, raddr) == nil {
		s.Metrics.Responses.Add(1)
	}
}

// servePerPacket is the legacy serve loop: one buffer copy and one spawned
// goroutine per datagram. Kept for baseline comparison benchmarks.
func (s *Server) servePerPacket() error {
	s.wg.Add(1)
	defer s.wg.Done()
	buf := make([]byte, maxPacketSize)
	for {
		n, raddr, err := s.readFrom(buf)
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return fmt.Errorf("dnsserver: read: %w", err)
		}
		if !raddr.IsValid() {
			continue
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handlePacket(raddr, pkt)
		}()
	}
}

// readFrom reads one datagram, preferring the AddrPort-returning UDP path
// that avoids a net.Addr allocation per packet.
func (s *Server) readFrom(buf []byte) (int, netip.AddrPort, error) {
	if s.udpConn != nil {
		return s.udpConn.ReadFromUDPAddrPort(buf)
	}
	n, remote, err := s.conn.ReadFrom(buf)
	if err != nil {
		return 0, netip.AddrPort{}, err
	}
	raddr, _ := remoteAddrPort(remote)
	return n, raddr, nil
}

// writeTo sends one response datagram.
func (s *Server) writeTo(wire []byte, raddr netip.AddrPort) error {
	if s.udpConn != nil {
		_, err := s.udpConn.WriteToUDPAddrPort(wire, raddr)
		return err
	}
	_, err := s.conn.WriteTo(wire, net.UDPAddrFromAddrPort(raddr))
	return err
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) handlePacket(raddr netip.AddrPort, pkt []byte) {
	query := s.msgPool.Get().(*dnsmsg.Message)
	defer s.msgPool.Put(query)
	if err := dnsmsg.UnpackInto(query, pkt); err != nil || query.Response {
		s.Metrics.Malformed.Add(1)
		return
	}
	s.Metrics.Queries.Add(1)
	if s.rrl != nil && !s.rrl.allow(raddr.Addr(), time.Now().UnixNano()) {
		s.Metrics.RateLimited.Add(1)
		if s.rrl.shouldSlip() {
			s.slip(raddr, query)
		}
		return
	}
	var startNs int64
	if s.latency != nil {
		startNs = time.Now().UnixNano()
	}
	resp := safeServe(s.handler, &s.Metrics, raddr, query)
	if s.latency != nil {
		s.latency.ObserveNanos(time.Now().UnixNano() - startNs)
	}
	if resp == nil {
		s.Metrics.Dropped.Add(1)
		return
	}
	// Respect the client's advertised UDP payload size (512 octets for
	// non-EDNS queries, RFC 1035), clamped to maxAdvertisedUDPSize per
	// RFC 6891 §6.2.5 rather than trusting arbitrary advertised sizes:
	// oversized answers are truncated with TC=1 so the client retries
	// over TCP.
	maxSize := 512
	if query.EDNS {
		maxSize = int(query.UDPSize)
		if maxSize < 512 {
			maxSize = 512
		}
		if maxSize > maxAdvertisedUDPSize {
			maxSize = maxAdvertisedUDPSize
		}
	}
	wp := s.packPool.Get().(*[]byte)
	defer func() {
		*wp = (*wp)[:0]
		s.packPool.Put(wp)
	}()
	wire, err := TruncateAppend((*wp)[:0], resp, maxSize)
	if err != nil {
		// A handler bug; answer SERVFAIL so the client doesn't hang.
		servfail := query.Reply()
		servfail.RCode = dnsmsg.RCodeServerFailure
		if wire, err = servfail.AppendPack((*wp)[:0]); err != nil {
			s.Metrics.Dropped.Add(1)
			return
		}
	}
	*wp = wire[:0] // keep any growth for the next response
	if err := s.writeTo(wire, raddr); err == nil {
		s.Metrics.Responses.Add(1)
	}
}

// slip answers a rate-limited query with a minimal TC=1 response: no
// records, just the truncation bit, steering a legitimate client behind
// the offending prefix to retry over TCP (where its source address is
// verified by the handshake). Runs on the limited path only.
func (s *Server) slip(raddr netip.AddrPort, query *dnsmsg.Message) {
	resp := query.Reply()
	resp.Truncated = true
	wire, err := resp.Pack()
	if err != nil {
		return
	}
	if s.writeTo(wire, raddr) == nil {
		s.Metrics.Slips.Add(1)
		s.Metrics.Responses.Add(1)
	}
}

// safeServe invokes the handler, converting a panic into a SERVFAIL
// response: one misbehaving query must not take down the serve loop (or, in
// goroutine-per-packet mode, the process). Shared by the UDP and TCP
// servers.
func safeServe(h Handler, m *Metrics, raddr netip.AddrPort, query *dnsmsg.Message) (resp *dnsmsg.Message) {
	defer func() {
		if p := recover(); p != nil {
			m.HandlerPanics.Add(1)
			r := query.Reply()
			r.RCode = dnsmsg.RCodeServerFailure
			resp = r
		}
	}()
	return h.ServeDNS(raddr, query)
}

// Close shuts the server down gracefully: readers are woken and stop
// accepting new datagrams, queued and in-flight queries drain through the
// workers (their responses still go out), and only then is the socket
// closed. Late datagrams arriving during the drain stay in the kernel
// buffer and die with the socket.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	// A read deadline in the past wakes every reader blocked in ReadFrom
	// without tearing down the socket, so workers can still write
	// responses for queries already accepted.
	_ = s.conn.SetReadDeadline(time.Now())
	s.wg.Wait()
	return s.conn.Close()
}

func remoteAddrPort(a net.Addr) (netip.AddrPort, bool) {
	if u, ok := a.(*net.UDPAddr); ok {
		return u.AddrPort(), true
	}
	ap, err := netip.ParseAddrPort(a.String())
	if err != nil {
		return netip.AddrPort{}, false
	}
	return ap, true
}
