//go:build linux && arm64

package dnsserver

// Syscall numbers for linux/arm64 (the generic 64-bit syscall table).
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
