package dnsserver

import (
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"testing"
	"time"

	"eum/internal/dnsmsg"
)

// exchange sends one A query for name with the given ID over conn and
// returns the unpacked response (fatal on timeout).
func exchange(t *testing.T, conn net.Conn, id uint16, name string) *dnsmsg.Message {
	t.Helper()
	wire, err := dnsmsg.NewQuery(id, dnsmsg.Name(name), dnsmsg.TypeA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("no response for %s (id %d): %v", name, id, err)
	}
	resp, err := dnsmsg.Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestListenReusePortSharded binds multiple SO_REUSEPORT shards on one
// address, serves queries through them, and shuts down without leaking
// goroutines or leaving a shard socket open.
func TestListenReusePortSharded(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("SO_REUSEPORT sharding is linux-only")
	}
	baseline := runtime.NumGoroutine()

	h := &echoHandler{}
	s, err := ListenConfig("127.0.0.1:0", h, Config{ListenerShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	// Every shard must share the same address: the kernel spreads flows.
	for i := 0; i < s.Shards(); i++ {
		if s.ShardAddr(i).String() != s.Addr().String() {
			t.Errorf("shard %d addr = %v, want %v", i, s.ShardAddr(i), s.Addr())
		}
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = s.Serve() }()

	// Many distinct 4-tuples so the kernel's hash exercises several shards.
	const queries = 40
	for i := 0; i < queries; i++ {
		conn, err := net.Dial("udp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		resp := exchange(t, conn, uint16(i), fmt.Sprintf("q%d.example.net", i))
		conn.Close()
		if resp.ID != uint16(i) || len(resp.Answers) != 1 {
			t.Fatalf("query %d: bad response %v", i, resp)
		}
	}
	if got := s.Metrics.Queries.Load(); got != queries {
		t.Errorf("aggregate Queries = %d, want %d", got, queries)
	}
	var perShard uint64
	for _, st := range s.ShardStats() {
		perShard += st.Queries
	}
	if perShard != queries {
		t.Errorf("per-shard Queries sum = %d, want %d", perShard, queries)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-serveDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	if got := waitGoroutines(baseline); got > baseline+2 {
		t.Fatalf("goroutines leaked: %d -> %d", baseline, got)
	}
}

// TestBatchedIOServes runs the recvmmsg/sendmmsg path end to end: every
// query is answered and the wakeup counters prove the batch loop (not the
// portable fallback) was doing the work.
func TestBatchedIOServes(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("batched I/O is linux-only")
	}
	h := &echoHandler{}
	s, err := ListenConfig("127.0.0.1:0", h, Config{ListenerShards: 1, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve() }()
	defer s.Close()

	conn, err := net.Dial("udp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const queries = 50
	for i := 0; i < queries; i++ {
		resp := exchange(t, conn, uint16(i), fmt.Sprintf("b%d.example.net", i))
		if resp.ID != uint16(i) || len(resp.Answers) != 1 {
			t.Fatalf("query %d: bad response %v", i, resp)
		}
	}

	st := s.ShardStats()[0]
	if st.Queries != queries || st.Responses != queries {
		t.Errorf("shard stats = %+v, want %d queries/responses", st, queries)
	}
	if st.Wakeups == 0 || st.BatchedPackets != queries {
		t.Errorf("wakeups = %d batched = %d, want nonzero wakeups and %d packets",
			st.Wakeups, st.BatchedPackets, queries)
	}
	if st.BatchedPackets < st.Wakeups {
		t.Errorf("batched %d < wakeups %d: counter inversion", st.BatchedPackets, st.Wakeups)
	}
}

// TestBatchShutdownWakes closes a server whose batch readers are parked in
// recvmmsg with nothing arriving; Close's read deadline must wake them.
func TestBatchShutdownWakes(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("batched I/O is linux-only")
	}
	baseline := runtime.NumGoroutine()
	s, err := ListenConfig("127.0.0.1:0", HandlerFunc(
		func(_ netip.AddrPort, q *dnsmsg.Message) *dnsmsg.Message { return q.Reply() },
	), Config{ListenerShards: 2, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = s.Serve() }()
	time.Sleep(20 * time.Millisecond) // let readers park in recvmmsg

	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung: batch reader never woke from recvmmsg")
	}
	select {
	case <-serveDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	if got := waitGoroutines(baseline); got > baseline+2 {
		t.Fatalf("goroutines leaked: %d -> %d", baseline, got)
	}
}

// TestShardIndependenceRaceHammer proves shards share nothing that
// matters: a flood that exhausts shard 0's RRL budget for a source prefix
// must not rate-limit the same prefix on shards 1..3. Uses NewConns
// (separately bound sockets) so each shard is directly addressable — the
// kernel's REUSEPORT hash is not steerable from a test. Run under -race
// this doubles as the cross-shard data-race check.
func TestShardIndependenceRaceHammer(t *testing.T) {
	const shards = 4
	conns := make([]net.PacketConn, shards)
	for i := range conns {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = pc
	}
	s, err := NewConns(conns, &echoHandler{}, Config{
		Readers: 1, Workers: 2, QueueDepth: 64,
		RRLRate: 50, RRLBurst: 8, RRLSlip: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve() }()
	defer s.Close()

	// Flood shard 0 from one socket: 500 back-to-back queries against a
	// 50/s budget with burst 8 must trip the limiter hard.
	flood, err := net.Dial("udp", s.ShardAddr(0).String())
	if err != nil {
		t.Fatal(err)
	}
	defer flood.Close()
	var floodWG sync.WaitGroup
	floodWG.Add(1)
	go func() {
		defer floodWG.Done()
		wire, _ := dnsmsg.NewQuery(9, "flood.example.net", dnsmsg.TypeA).Pack()
		for i := 0; i < 500; i++ {
			_, _ = flood.Write(wire)
		}
	}()

	// Concurrently, each other shard gets a few well-spaced queries from
	// the same source prefix (127.0.0.0/24). Independent limiter tables
	// mean every one must be answered.
	var wg sync.WaitGroup
	errs := make(chan error, shards)
	for shard := 1; shard < shards; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			conn, err := net.Dial("udp", s.ShardAddr(shard).String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			for i := 0; i < 4; i++ {
				wire, _ := dnsmsg.NewQuery(uint16(shard*100+i),
					dnsmsg.Name(fmt.Sprintf("s%d-%d.example.net", shard, i)), dnsmsg.TypeA).Pack()
				if _, err := conn.Write(wire); err != nil {
					errs <- err
					return
				}
				_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
				buf := make([]byte, 4096)
				n, err := conn.Read(buf)
				if err != nil {
					errs <- fmt.Errorf("shard %d query %d starved: cross-shard rate-limit leak? %v", shard, i, err)
					return
				}
				resp, err := dnsmsg.Unpack(buf[:n])
				if err != nil || resp.RCode != dnsmsg.RCodeSuccess || len(resp.Answers) == 0 {
					errs <- fmt.Errorf("shard %d query %d: bad response %v %v", shard, i, resp, err)
					return
				}
				time.Sleep(30 * time.Millisecond)
			}
		}(shard)
	}
	wg.Wait()
	floodWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	stats := s.ShardStats()
	if stats[0].RateLimited == 0 {
		t.Error("flooded shard 0 never rate-limited: RRL not active")
	}
	for shard := 1; shard < shards; shard++ {
		if stats[shard].RateLimited != 0 {
			t.Errorf("shard %d rate-limited %d queries: limiter state leaked across shards",
				shard, stats[shard].RateLimited)
		}
		if stats[shard].Responses != 4 {
			t.Errorf("shard %d responses = %d, want 4", shard, stats[shard].Responses)
		}
	}
	if s.Metrics.RateLimited.Load() != stats[0].RateLimited {
		t.Errorf("aggregate RateLimited %d != shard 0's %d",
			s.Metrics.RateLimited.Load(), stats[0].RateLimited)
	}
}

// TestShardedGracefulShutdown extends the goroutine-leak check to a
// multi-shard server with a query parked in a handler on one shard.
func TestShardedGracefulShutdown(t *testing.T) {
	baseline := runtime.NumGoroutine()

	conns := make([]net.PacketConn, 3)
	for i := range conns {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = pc
	}
	h := &gatedHandler{release: make(chan struct{})}
	s, err := NewConns(conns, h, Config{Readers: 1, Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = s.Serve() }()

	// Park one query in shard 2's handler.
	conn, err := net.Dial("udp", s.ShardAddr(2).String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wire, _ := dnsmsg.NewQuery(77, "park.example.net", dnsmsg.TypeA).Pack()
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Metrics.Queries.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never reached the handler")
		}
		time.Sleep(time.Millisecond)
	}

	closeDone := make(chan error, 1)
	go func() { closeDone <- s.Close() }()
	select {
	case <-closeDone:
		t.Fatal("Close returned while a handler was in flight on shard 2")
	case <-time.After(50 * time.Millisecond):
	}

	close(h.release)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 512)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("parked query lost its response: %v", err)
	}
	if resp, err := dnsmsg.Unpack(buf[:n]); err != nil || resp.ID != 77 {
		t.Fatalf("bad drained response: %v %v", resp, err)
	}
	if err := <-closeDone; err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-serveDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	if got := waitGoroutines(baseline); got > baseline+2 {
		t.Fatalf("goroutines leaked: %d -> %d", baseline, got)
	}
}
