// Package demand models the client workload the CDN serves: a catalogue of
// content domains with Zipf popularity and page-composition properties, and
// samplers that draw client request events from the world's demand
// distribution. It also provides the coverage-curve analysis of §5.1
// (Fig 21): how many mapping units account for a given share of demand.
package demand

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"eum/internal/world"
)

// Domain is one CDN-hosted content domain.
type Domain struct {
	// Name is the content domain, e.g. "e0042.b.cdn.example.net".
	Name string
	// Popularity is the domain's share of request volume.
	Popularity float64
	// DynamicFraction is how much of TTFB is origin/page-construction
	// work that mapping cannot speed up (§4.1: dynamic base pages are
	// personalised at origin; overlay transport, unaffected by the
	// roll-out, carries that traffic).
	DynamicFraction float64
	// PageBytes is the embedded (cacheable) content size driving the
	// content download time.
	PageBytes int
}

// Catalogue is a set of domains with sampling support.
type Catalogue struct {
	Domains []Domain
	cum     []float64
}

// NewCatalogue builds n domains with Zipf(alpha) popularity. Page sizes
// and dynamic fractions vary deterministically with the seed.
func NewCatalogue(n int, alpha float64, seed int64) (*Catalogue, error) {
	if n <= 0 {
		return nil, fmt.Errorf("demand: catalogue size must be positive, got %d", n)
	}
	if alpha <= 0 {
		alpha = 1
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Catalogue{Domains: make([]Domain, n), cum: make([]float64, n)}
	var total float64
	for i := 0; i < n; i++ {
		pop := 1 / math.Pow(float64(i+1), alpha)
		c.Domains[i] = Domain{
			Name:            fmt.Sprintf("e%04d.b.cdn.example.net", i),
			Popularity:      pop,
			DynamicFraction: 0.35 + 0.4*rng.Float64(),
			PageBytes:       30_000 + rng.Intn(370_000), // 30-400 KB of embedded content
		}
		total += pop
	}
	var cum float64
	for i := range c.Domains {
		c.Domains[i].Popularity /= total
		cum += c.Domains[i].Popularity
		c.cum[i] = cum
	}
	return c, nil
}

// MustNewCatalogue panics on error, for examples and tests.
func MustNewCatalogue(n int, alpha float64, seed int64) *Catalogue {
	c, err := NewCatalogue(n, alpha, seed)
	if err != nil {
		panic(err)
	}
	return c
}

// Sample draws a domain proportionally to popularity.
func (c *Catalogue) Sample(rng *rand.Rand) Domain {
	u := rng.Float64()
	i := sort.SearchFloat64s(c.cum, u)
	if i >= len(c.Domains) {
		i = len(c.Domains) - 1
	}
	return c.Domains[i]
}

// Sampler draws client blocks proportionally to their demand.
type Sampler struct {
	blocks []*world.ClientBlock
	cum    []float64
}

// NewSampler builds a demand-weighted block sampler over the world.
// The filter, if non-nil, restricts the population (e.g. to clients of
// public resolvers, as the roll-out measurements do).
func NewSampler(w *world.World, filter func(*world.ClientBlock) bool) (*Sampler, error) {
	s := &Sampler{}
	var cum float64
	for _, b := range w.Blocks {
		if filter != nil && !filter(b) {
			continue
		}
		s.blocks = append(s.blocks, b)
		cum += b.Demand
		s.cum = append(s.cum, cum)
	}
	if len(s.blocks) == 0 {
		return nil, fmt.Errorf("demand: no blocks pass the filter")
	}
	return s, nil
}

// Sample draws a block proportionally to demand.
func (s *Sampler) Sample(rng *rand.Rand) *world.ClientBlock {
	u := rng.Float64() * s.cum[len(s.cum)-1]
	i := sort.SearchFloat64s(s.cum, u)
	if i >= len(s.blocks) {
		i = len(s.blocks) - 1
	}
	return s.blocks[i]
}

// Len returns the sampled population size.
func (s *Sampler) Len() int { return len(s.blocks) }

// CoveragePoint is one point of a coverage curve: the top Count units by
// demand jointly account for CumFraction of total demand.
type CoveragePoint struct {
	Count       int
	CumFraction float64
}

// CoverageCurve sorts the given per-unit demands descending and returns
// the cumulative demand fraction at (roughly exponentially spaced) counts —
// Fig 21's "number of client IP blocks or LDNSes that produce a given
// percent of total demand".
func CoverageCurve(demands []float64) []CoveragePoint {
	if len(demands) == 0 {
		return nil
	}
	d := append([]float64{}, demands...)
	sort.Sort(sort.Reverse(sort.Float64Slice(d)))
	var total float64
	for _, v := range d {
		total += v
	}
	if total == 0 {
		return nil
	}
	var out []CoveragePoint
	var cum float64
	next := 1
	for i, v := range d {
		cum += v
		if i+1 == next || i == len(d)-1 {
			out = append(out, CoveragePoint{Count: i + 1, CumFraction: cum / total})
			next = int(math.Ceil(float64(next) * 1.25))
			if next <= i+1 {
				next = i + 2
			}
		}
	}
	return out
}

// UnitsForCoverage returns how many of the highest-demand units are needed
// to cover the given fraction of total demand (§5.1: covering 95% of
// demand takes 25K LDNSes but 2.2M /24 blocks).
func UnitsForCoverage(demands []float64, fraction float64) int {
	d := append([]float64{}, demands...)
	sort.Sort(sort.Reverse(sort.Float64Slice(d)))
	var total float64
	for _, v := range d {
		total += v
	}
	if total == 0 {
		return 0
	}
	var cum float64
	for i, v := range d {
		cum += v
		if cum >= fraction*total {
			return i + 1
		}
	}
	return len(d)
}

// BlockDemands extracts per-block demand from the world.
func BlockDemands(w *world.World) []float64 {
	out := make([]float64, 0, len(w.Blocks))
	for _, b := range w.Blocks {
		out = append(out, b.Demand)
	}
	return out
}

// LDNSDemands extracts per-LDNS demand from the world.
func LDNSDemands(w *world.World) []float64 {
	out := make([]float64, 0, len(w.LDNSes))
	for _, l := range w.LDNSes {
		if l.Demand > 0 {
			out = append(out, l.Demand)
		}
	}
	return out
}

// PairRecord is one NetSession-style client-LDNS association record
// (§3.1): a /24 client block, the LDNS its clients use, and the relative
// frequency of that association.
type PairRecord struct {
	Block     *world.ClientBlock
	LDNS      *world.LDNS
	Frequency float64
}

// CollectPairs emulates the NetSession measurement: for every client
// block, report its LDNS association. (In this synthetic world each block
// has a single resolver, so frequencies are 1; the record shape matches
// the paper's aggregation.)
func CollectPairs(w *world.World) []PairRecord {
	out := make([]PairRecord, 0, len(w.Blocks))
	for _, b := range w.Blocks {
		out = append(out, PairRecord{Block: b, LDNS: b.LDNS, Frequency: 1})
	}
	return out
}
