package demand

import (
	"math"
	"math/rand"
	"testing"

	"eum/internal/world"
)

var testW = world.MustGenerate(world.Config{Seed: 31, NumBlocks: 2000})

func TestNewCatalogue(t *testing.T) {
	c := MustNewCatalogue(100, 1.0, 1)
	if len(c.Domains) != 100 {
		t.Fatalf("domains = %d", len(c.Domains))
	}
	var sum float64
	for i, d := range c.Domains {
		sum += d.Popularity
		if d.Name == "" || d.PageBytes <= 0 {
			t.Fatalf("domain %d malformed: %+v", i, d)
		}
		if d.DynamicFraction < 0.3 || d.DynamicFraction > 0.8 {
			t.Errorf("dynamic fraction %v out of range", d.DynamicFraction)
		}
		if i > 0 && d.Popularity > c.Domains[i-1].Popularity {
			t.Error("popularity not descending")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("popularity sums to %v", sum)
	}
}

func TestNewCatalogueErrors(t *testing.T) {
	if _, err := NewCatalogue(0, 1, 1); err == nil {
		t.Error("zero-size catalogue accepted")
	}
}

func TestCatalogueSampleDistribution(t *testing.T) {
	c := MustNewCatalogue(50, 1.0, 2)
	rng := rand.New(rand.NewSource(3))
	counts := map[string]int{}
	n := 20000
	for i := 0; i < n; i++ {
		counts[c.Sample(rng).Name]++
	}
	// Top domain should be sampled roughly at its popularity.
	top := c.Domains[0]
	got := float64(counts[top.Name]) / float64(n)
	if math.Abs(got-top.Popularity) > 0.05 {
		t.Errorf("top domain sampled at %.3f, want ~%.3f", got, top.Popularity)
	}
	// And far more often than the tail.
	tail := c.Domains[len(c.Domains)-1]
	if counts[top.Name] <= counts[tail.Name] {
		t.Error("Zipf head not dominant")
	}
}

func TestSampler(t *testing.T) {
	s, err := NewSampler(testW, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(testW.Blocks) {
		t.Errorf("sampler len = %d", s.Len())
	}
	rng := rand.New(rand.NewSource(4))
	counts := map[uint64]int{}
	for i := 0; i < 30000; i++ {
		counts[s.Sample(rng).ID]++
	}
	// A top-demand block must be sampled more often than a bottom one.
	var hi, lo *world.ClientBlock
	for _, b := range testW.Blocks {
		if hi == nil || b.Demand > hi.Demand {
			hi = b
		}
		if lo == nil || b.Demand < lo.Demand {
			lo = b
		}
	}
	if counts[hi.ID] <= counts[lo.ID] {
		t.Errorf("demand weighting broken: hi=%d lo=%d", counts[hi.ID], counts[lo.ID])
	}
}

func TestSamplerFilter(t *testing.T) {
	s, err := NewSampler(testW, func(b *world.ClientBlock) bool { return b.LDNS.IsPublic() })
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		if !s.Sample(rng).LDNS.IsPublic() {
			t.Fatal("filter violated")
		}
	}
}

func TestSamplerEmptyFilter(t *testing.T) {
	if _, err := NewSampler(testW, func(*world.ClientBlock) bool { return false }); err == nil {
		t.Error("empty population accepted")
	}
}

func TestCoverageCurve(t *testing.T) {
	demands := []float64{50, 25, 15, 5, 3, 2}
	pts := CoverageCurve(demands)
	if len(pts) == 0 {
		t.Fatal("empty curve")
	}
	if pts[0].Count != 1 || math.Abs(pts[0].CumFraction-0.5) > 1e-9 {
		t.Errorf("first point = %+v", pts[0])
	}
	last := pts[len(pts)-1]
	if last.Count != len(demands) || math.Abs(last.CumFraction-1) > 1e-9 {
		t.Errorf("last point = %+v", last)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Count <= pts[i-1].Count || pts[i].CumFraction < pts[i-1].CumFraction {
			t.Fatal("curve not monotone")
		}
	}
	if CoverageCurve(nil) != nil {
		t.Error("nil input should give nil curve")
	}
}

func TestUnitsForCoverage(t *testing.T) {
	demands := []float64{50, 25, 15, 5, 3, 2}
	cases := []struct {
		frac float64
		want int
	}{{0.5, 1}, {0.75, 2}, {0.9, 3}, {1.0, 6}}
	for _, c := range cases {
		if got := UnitsForCoverage(demands, c.frac); got != c.want {
			t.Errorf("UnitsForCoverage(%.2f) = %d, want %d", c.frac, got, c.want)
		}
	}
	if UnitsForCoverage(nil, 0.5) != 0 {
		t.Error("empty demands should need 0 units")
	}
}

func TestLDNSCoverageSteeperThanBlocks(t *testing.T) {
	// Fig 21: covering 95% of demand takes far fewer LDNSes than /24
	// blocks, because each LDNS aggregates many blocks.
	blocks := BlockDemands(testW)
	ldns := LDNSDemands(testW)
	nb := UnitsForCoverage(blocks, 0.95)
	nl := UnitsForCoverage(ldns, 0.95)
	if nl >= nb {
		t.Errorf("95%% coverage: LDNSes (%d) should be far fewer than blocks (%d)", nl, nb)
	}
	if float64(nb)/float64(nl) < 3 {
		t.Errorf("coverage ratio = %.1f, want >= 3", float64(nb)/float64(nl))
	}
}

func TestCollectPairs(t *testing.T) {
	pairs := CollectPairs(testW)
	if len(pairs) != len(testW.Blocks) {
		t.Fatalf("pairs = %d, want %d", len(pairs), len(testW.Blocks))
	}
	for _, p := range pairs[:100] {
		if p.LDNS != p.Block.LDNS || p.Frequency != 1 {
			t.Fatalf("pair malformed: %+v", p)
		}
	}
}
