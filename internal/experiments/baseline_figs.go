package experiments

import (
	"fmt"

	"eum/internal/mapping"
	"eum/internal/redirect"
	"eum/internal/stats"
)

// BaselineRow summarises one mechanism across the public-resolver client
// population for one download size.
type BaselineRow struct {
	Mechanism redirect.Mechanism
	SizeBytes int
	// MeanStartupMs and MeanTotalMs are demand-weighted means.
	MeanStartupMs float64
	MeanTotalMs   float64
}

// BaselineMechanisms reproduces the §7 comparison the paper makes in
// prose: end-user mapping via ECS against the older metafile and HTTP
// redirection mechanisms and the NS-only baseline, for a small web page
// and a large software download. The redirection penalty dominates small
// transfers and washes out on large ones — which is why redirection was
// "acceptable only for larger downloads" and ECS is the general solution.
func BaselineMechanisms(lab *Lab) ([]BaselineRow, *Report) {
	scorer := mapping.NewScorer(lab.World, lab.Platform, lab.Net, 1000)
	eval := redirect.NewEvaluator(scorer, lab.Net)

	sizes := []int{100_000, 50_000_000} // 100 KB page, 50 MB download
	type key struct {
		mech redirect.Mechanism
		size int
	}
	startup := map[key]*stats.Dataset{}
	total := map[key]*stats.Dataset{}

	count := 0
	for _, b := range lab.World.Blocks {
		if !b.LDNS.IsPublic() {
			continue
		}
		if count++; count > 500 {
			break
		}
		for _, size := range sizes {
			rs, err := eval.Evaluate(b, size, 1)
			if err != nil {
				continue
			}
			for _, r := range rs {
				k := key{r.Mechanism, size}
				if startup[k] == nil {
					startup[k] = &stats.Dataset{}
					total[k] = &stats.Dataset{}
				}
				startup[k].Add(r.StartupMs, b.Demand)
				total[k].Add(r.TotalMs, b.Demand)
			}
		}
	}

	var out []BaselineRow
	rep := &Report{
		ID:      "sec7",
		Caption: "End-user mapping mechanisms: ECS vs metafile vs HTTP redirect vs NS-only",
		Columns: []string{"mechanism", "size", "mean-startup-ms", "mean-total-ms"},
	}
	for _, size := range sizes {
		for _, mech := range []redirect.Mechanism{redirect.NSOnly, redirect.ECS, redirect.Metafile, redirect.HTTPRedirect} {
			k := key{mech, size}
			if startup[k] == nil {
				continue
			}
			row1 := BaselineRow{
				Mechanism:     mech,
				SizeBytes:     size,
				MeanStartupMs: startup[k].Mean(),
				MeanTotalMs:   total[k].Mean(),
			}
			out = append(out, row1)
			rep.Rows = append(rep.Rows, row(mech.String(), fmt.Sprintf("%dKB", size/1000),
				row1.MeanStartupMs, row1.MeanTotalMs))
		}
	}
	return out, rep
}
