package experiments

import (
	"fmt"
	"sort"

	"eum/internal/cdn"

	"eum/internal/mapping"
	"eum/internal/netmodel"
	"eum/internal/par"
	"eum/internal/stats"
	"eum/internal/world"
)

// Fig25Point is one (N, policy) cell of Fig 25: traffic-weighted ping
// latency statistics achieved with N deployment locations.
type Fig25Point struct {
	Deployments int
	Policy      mapping.Policy
	MeanMs      float64
	P95Ms       float64
	P99Ms       float64
}

// Fig25Config parameterises the deployment sweep.
type Fig25Config struct {
	// Ns is the deployment counts to sweep (paper: 40..2560 doubling).
	Ns []int
	// Runs is the number of random deployment orderings averaged
	// (paper: 100).
	Runs int
	// PingTargets caps the measured client set (paper: 8K targets for the
	// top-traffic blocks).
	PingTargets int
	// MaxBlocks samples the highest-demand blocks as the client
	// population (0 = all).
	MaxBlocks int
}

// DefaultFig25Config returns the paper's sweep at reduced run count.
func DefaultFig25Config(scale Scale) Fig25Config {
	cfg := Fig25Config{
		Ns:          []int{40, 80, 160, 320, 640, 1280, 2560},
		Runs:        10,
		PingTargets: 2000,
		MaxBlocks:   8000,
	}
	if scale == Small {
		cfg.Ns = []int{40, 80, 160, 320}
		cfg.Runs = 3
		cfg.PingTargets = 600
		cfg.MaxBlocks = 2000
	}
	return cfg
}

// Fig25DeploymentSweep reproduces Fig 25: the latency achieved by NS,
// EU and CANS mapping as a function of the number of deployment
// locations. For each run, deployments are randomly ordered and each N
// simulates mapping with the first N (so each N extends the previous
// subset, as in the paper). Reported values are averaged across runs.
//
// The three schemes follow §6's definitions:
//
//	NS:   deployment with least latency to the client's LDNS.
//	EU:   deployment with least latency to the client's /24 block.
//	CANS: deployment minimising the traffic-weighted mean latency to the
//	      LDNS's client cluster.
//
// The reported metric is the ping latency from the chosen deployment to
// the client block — an underestimate of true client RTT, as in the paper,
// but meaningful in relative terms.
func Fig25DeploymentSweep(lab *Lab, cfg Fig25Config) ([]Fig25Point, *Report) {
	if len(cfg.Ns) == 0 {
		cfg = DefaultFig25Config(Small)
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 3
	}
	blocks := topBlocks(lab.World, cfg.MaxBlocks)

	// Every (run, N) cell is independent: its subset seed depends only on
	// the run index, so cells can be scored concurrently and reduced in
	// fixed run order afterwards. Each cell runs its own one-shot control
	// plane: a SnapshotBuilder publishes a single deterministic epoch
	// (numbered by cell index) and all three schemes read that snapshot —
	// the rank tables are policy-independent, so building under CANS also
	// populates the candidate lists the CANS column needs.
	pols := []mapping.Policy{mapping.NSBased, mapping.EndUser, mapping.ClientAwareNS}
	type cell struct{ mean, p95, p99 float64 }
	cells := par.Map(cfg.Runs*len(cfg.Ns), func(i int) [3]cell {
		run, nIdx := i/len(cfg.Ns), i%len(cfg.Ns)
		sub := lab.Platform.Subset(cfg.Ns[nIdx], int64(run+1))
		builder := mapping.NewSnapshotBuilder(lab.World, sub, lab.Net, mapping.Config{PingTargets: cfg.PingTargets})
		snap := builder.Build(uint64(i+1), mapping.ClientAwareNS)
		var out [3]cell
		for pi, pol := range pols {
			d := evalPolicy(lab, snap, blocks, pol)
			out[pi] = cell{d.Mean(), d.Percentile(95), d.Percentile(99)}
		}
		return out
	})

	var out []Fig25Point
	rep := &Report{
		ID:      "fig25",
		Caption: "Ping latency vs number of deployment locations (NS / EU / CANS)",
		Columns: []string{"deployments", "policy", "mean-ms", "p95-ms", "p99-ms"},
	}
	for nIdx, n := range cfg.Ns {
		for pi, pol := range pols {
			var c cell
			for run := 0; run < cfg.Runs; run++ {
				r := cells[run*len(cfg.Ns)+nIdx][pi]
				c.mean += r.mean
				c.p95 += r.p95
				c.p99 += r.p99
			}
			p := Fig25Point{
				Deployments: n,
				Policy:      pol,
				MeanMs:      c.mean / float64(cfg.Runs),
				P95Ms:       c.p95 / float64(cfg.Runs),
				P99Ms:       c.p99 / float64(cfg.Runs),
			}
			out = append(out, p)
			rep.Rows = append(rep.Rows, row(n, pol.String(), p.MeanMs, p.P95Ms, p.P99Ms))
		}
	}
	return out, rep
}

// evalPolicy maps every block under the policy by reading a published
// snapshot — the same data-plane lookups the authority performs — and
// returns the demand-weighted distribution of ping latency from the chosen
// deployment to the client. NS and CANS decisions are resolved once per
// LDNS, since every client of an LDNS shares its assignment; the block
// sweep shards the block list and merges the partial datasets in shard
// order — reproducing the serial sample order bit for bit.
func evalPolicy(lab *Lab, snap *mapping.Snapshot, blocks []*world.ClientBlock, pol mapping.Policy) *stats.Dataset {
	var ldnsChoice map[uint64]netmodel.Endpoint
	if pol != mapping.EndUser { // NSBased and ClientAwareNS share per-LDNS decisions
		ldnsChoice = make(map[uint64]netmodel.Endpoint)
		for _, b := range blocks {
			id := b.LDNS.Endpoint().ID
			if _, ok := ldnsChoice[id]; ok {
				continue
			}
			var dep *cdn.Deployment
			if pol == mapping.ClientAwareNS {
				for _, r := range snap.CANSCandidates(id) {
					if r.Deployment.Alive() {
						dep = r.Deployment
						break
					}
				}
			} else {
				dep, _ = snap.Best(id, false)
			}
			if dep != nil {
				ldnsChoice[id] = dep.Endpoint()
			}
		}
	}

	parts := par.MapShards(len(blocks), func(_, lo, hi int) *stats.Dataset {
		d := &stats.Dataset{}
		for _, b := range blocks[lo:hi] {
			var depEp netmodel.Endpoint
			if pol == mapping.EndUser {
				dep, _ := snap.Best(b.Endpoint().ID, true)
				if dep == nil {
					continue
				}
				depEp = dep.Endpoint()
			} else {
				ep, ok := ldnsChoice[b.LDNS.Endpoint().ID]
				if !ok {
					continue
				}
				depEp = ep
			}
			d.Add(lab.Net.PingMs(depEp, b.Endpoint()), b.Demand)
		}
		return d
	})
	d := &stats.Dataset{}
	for _, p := range parts {
		d.Merge(p)
	}
	return d
}

// topBlocks returns up to n of the highest-demand blocks (all if n <= 0).
func topBlocks(w *world.World, n int) []*world.ClientBlock {
	blocks := append([]*world.ClientBlock{}, w.Blocks...)
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Demand > blocks[j].Demand })
	if n <= 0 || n >= len(blocks) {
		return blocks
	}
	return blocks[:n]
}

// AdoptionBand is one row of the §4.5 extrapolation: non-public-resolver
// demand in a client-LDNS distance band and the RTT/download improvement
// those clients would see if their ISP adopted ECS.
type AdoptionBand struct {
	// DistanceLo..DistanceHi is the client-LDNS distance band in miles.
	DistanceLo, DistanceHi float64
	// DemandShare is the band's share of non-public client demand.
	DemandShare float64
	// PredictedRTTGain is the expected fractional RTT reduction,
	// extrapolated from public-resolver clients at similar distances.
	PredictedRTTGain float64
}

// AdoptionExtrapolation reproduces the §4.5 analysis: how much of the
// remaining (ISP-resolver) demand sits far from its LDNS, and what gains
// ECS adoption would unlock. Gains are extrapolated by simulating NS vs EU
// mapping for the ISP-resolver clients in each distance band.
func AdoptionExtrapolation(lab *Lab) ([]AdoptionBand, *Report) {
	scorer := mapping.NewScorer(lab.World, lab.Platform, lab.Net, 1500)
	bands := []AdoptionBand{
		{DistanceLo: 1000, DistanceHi: 1e9},
		{DistanceLo: 500, DistanceHi: 1000},
		{DistanceLo: 100, DistanceHi: 500},
		{DistanceLo: 0, DistanceHi: 100},
	}
	type agg struct{ ns, eu, demand float64 }
	type adoptionPart struct {
		accs           [4]agg
		totalNonPublic float64
	}
	parts := par.MapShards(len(lab.World.Blocks), func(_, lo, hi int) *adoptionPart {
		p := &adoptionPart{}
		for _, b := range lab.World.Blocks[lo:hi] {
			if b.LDNS.IsPublic() {
				continue
			}
			p.totalNonPublic += b.Demand
			dist := b.ClientLDNSDistance()
			for i := range bands {
				if dist < bands[i].DistanceLo || dist >= bands[i].DistanceHi {
					continue
				}
				nsDep, _ := scorer.Best(b.LDNS.Endpoint())
				euDep, _ := scorer.Best(b.Endpoint())
				if nsDep == nil || euDep == nil {
					break
				}
				p.accs[i].ns += b.Demand * lab.Net.BaseRTTMs(nsDep.Endpoint(), b.Endpoint())
				p.accs[i].eu += b.Demand * lab.Net.BaseRTTMs(euDep.Endpoint(), b.Endpoint())
				p.accs[i].demand += b.Demand
				break
			}
		}
		return p
	})
	var totalNonPublic float64
	accs := make([]agg, len(bands))
	for _, p := range parts {
		totalNonPublic += p.totalNonPublic
		for i := range accs {
			accs[i].ns += p.accs[i].ns
			accs[i].eu += p.accs[i].eu
			accs[i].demand += p.accs[i].demand
		}
	}
	rep := &Report{
		ID:      "sec4.5",
		Caption: "ECS adoption extrapolation for ISP-resolver clients",
		Columns: []string{"distance-band-mi", "pct-of-non-public-demand", "predicted-rtt-gain-pct"},
	}
	for i := range bands {
		if accs[i].demand > 0 && totalNonPublic > 0 {
			bands[i].DemandShare = accs[i].demand / totalNonPublic
			bands[i].PredictedRTTGain = 1 - accs[i].eu/accs[i].ns
		}
		hi := fmt.Sprintf("%.0f", bands[i].DistanceHi)
		if bands[i].DistanceHi >= 1e9 {
			hi = "inf"
		}
		rep.Rows = append(rep.Rows, row(
			fmt.Sprintf("%.0f-%s", bands[i].DistanceLo, hi),
			100*bands[i].DemandShare, 100*bands[i].PredictedRTTGain))
	}
	return bands, rep
}
