package experiments

import (
	"fmt"
	"sort"

	"eum/internal/cdn"

	"eum/internal/mapping"
	"eum/internal/netmodel"
	"eum/internal/stats"
	"eum/internal/world"
)

// Fig25Point is one (N, policy) cell of Fig 25: traffic-weighted ping
// latency statistics achieved with N deployment locations.
type Fig25Point struct {
	Deployments int
	Policy      mapping.Policy
	MeanMs      float64
	P95Ms       float64
	P99Ms       float64
}

// Fig25Config parameterises the deployment sweep.
type Fig25Config struct {
	// Ns is the deployment counts to sweep (paper: 40..2560 doubling).
	Ns []int
	// Runs is the number of random deployment orderings averaged
	// (paper: 100).
	Runs int
	// PingTargets caps the measured client set (paper: 8K targets for the
	// top-traffic blocks).
	PingTargets int
	// MaxBlocks samples the highest-demand blocks as the client
	// population (0 = all).
	MaxBlocks int
}

// DefaultFig25Config returns the paper's sweep at reduced run count.
func DefaultFig25Config(scale Scale) Fig25Config {
	cfg := Fig25Config{
		Ns:          []int{40, 80, 160, 320, 640, 1280, 2560},
		Runs:        10,
		PingTargets: 2000,
		MaxBlocks:   8000,
	}
	if scale == Small {
		cfg.Ns = []int{40, 80, 160, 320}
		cfg.Runs = 3
		cfg.PingTargets = 600
		cfg.MaxBlocks = 2000
	}
	return cfg
}

// Fig25DeploymentSweep reproduces Fig 25: the latency achieved by NS,
// EU and CANS mapping as a function of the number of deployment
// locations. For each run, deployments are randomly ordered and each N
// simulates mapping with the first N (so each N extends the previous
// subset, as in the paper). Reported values are averaged across runs.
//
// The three schemes follow §6's definitions:
//
//	NS:   deployment with least latency to the client's LDNS.
//	EU:   deployment with least latency to the client's /24 block.
//	CANS: deployment minimising the traffic-weighted mean latency to the
//	      LDNS's client cluster.
//
// The reported metric is the ping latency from the chosen deployment to
// the client block — an underestimate of true client RTT, as in the paper,
// but meaningful in relative terms.
func Fig25DeploymentSweep(lab *Lab, cfg Fig25Config) ([]Fig25Point, *Report) {
	if len(cfg.Ns) == 0 {
		cfg = DefaultFig25Config(Small)
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 3
	}
	blocks := topBlocks(lab.World, cfg.MaxBlocks)

	type cell struct{ mean, p95, p99 float64 }
	acc := map[string]*cell{}
	key := func(n int, pol mapping.Policy) string { return fmt.Sprintf("%d/%d", n, pol) }

	for run := 0; run < cfg.Runs; run++ {
		seed := int64(run + 1)
		for _, n := range cfg.Ns {
			sub := lab.Platform.Subset(n, seed)
			scorer := mapping.NewScorer(lab.World, sub, lab.Net, cfg.PingTargets)
			for _, pol := range []mapping.Policy{mapping.NSBased, mapping.EndUser, mapping.ClientAwareNS} {
				d := evalPolicy(lab, scorer, blocks, pol)
				c := acc[key(n, pol)]
				if c == nil {
					c = &cell{}
					acc[key(n, pol)] = c
				}
				c.mean += d.Mean()
				c.p95 += d.Percentile(95)
				c.p99 += d.Percentile(99)
			}
		}
	}

	var out []Fig25Point
	rep := &Report{
		ID:      "fig25",
		Caption: "Ping latency vs number of deployment locations (NS / EU / CANS)",
		Columns: []string{"deployments", "policy", "mean-ms", "p95-ms", "p99-ms"},
	}
	for _, n := range cfg.Ns {
		for _, pol := range []mapping.Policy{mapping.NSBased, mapping.EndUser, mapping.ClientAwareNS} {
			c := acc[key(n, pol)]
			p := Fig25Point{
				Deployments: n,
				Policy:      pol,
				MeanMs:      c.mean / float64(cfg.Runs),
				P95Ms:       c.p95 / float64(cfg.Runs),
				P99Ms:       c.p99 / float64(cfg.Runs),
			}
			out = append(out, p)
			rep.Rows = append(rep.Rows, row(n, pol.String(), p.MeanMs, p.P95Ms, p.P99Ms))
		}
	}
	return out, rep
}

// evalPolicy maps every block under the policy and returns the
// demand-weighted distribution of ping latency from the chosen deployment
// to the client. NS and CANS decisions are computed once per LDNS, since
// every client of an LDNS shares its assignment.
func evalPolicy(lab *Lab, scorer *mapping.Scorer, blocks []*world.ClientBlock, pol mapping.Policy) *stats.Dataset {
	d := &stats.Dataset{}
	ldnsChoice := map[uint64]netmodel.Endpoint{}
	for _, b := range blocks {
		var depEp netmodel.Endpoint
		switch pol {
		case mapping.EndUser:
			dep, _ := scorer.Best(b.Endpoint())
			if dep == nil {
				continue
			}
			depEp = dep.Endpoint()
		default: // NSBased and ClientAwareNS share per-LDNS decisions
			ep, ok := ldnsChoice[b.LDNS.ID]
			if !ok {
				var dep *cdn.Deployment
				if pol == mapping.ClientAwareNS {
					eps := make([]netmodel.Endpoint, len(b.LDNS.Blocks))
					weights := make([]float64, len(b.LDNS.Blocks))
					for i, cb := range b.LDNS.Blocks {
						eps[i] = cb.Endpoint()
						weights[i] = cb.Demand
					}
					dep, _ = scorer.BestWeighted(eps, weights)
				} else {
					dep, _ = scorer.Best(b.LDNS.Endpoint())
				}
				if dep == nil {
					continue
				}
				ep = dep.Endpoint()
				ldnsChoice[b.LDNS.ID] = ep
			}
			depEp = ep
		}
		d.Add(lab.Net.PingMs(depEp, b.Endpoint()), b.Demand)
	}
	return d
}

// topBlocks returns up to n of the highest-demand blocks (all if n <= 0).
func topBlocks(w *world.World, n int) []*world.ClientBlock {
	blocks := append([]*world.ClientBlock{}, w.Blocks...)
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Demand > blocks[j].Demand })
	if n <= 0 || n >= len(blocks) {
		return blocks
	}
	return blocks[:n]
}

// AdoptionBand is one row of the §4.5 extrapolation: non-public-resolver
// demand in a client-LDNS distance band and the RTT/download improvement
// those clients would see if their ISP adopted ECS.
type AdoptionBand struct {
	// DistanceLo..DistanceHi is the client-LDNS distance band in miles.
	DistanceLo, DistanceHi float64
	// DemandShare is the band's share of non-public client demand.
	DemandShare float64
	// PredictedRTTGain is the expected fractional RTT reduction,
	// extrapolated from public-resolver clients at similar distances.
	PredictedRTTGain float64
}

// AdoptionExtrapolation reproduces the §4.5 analysis: how much of the
// remaining (ISP-resolver) demand sits far from its LDNS, and what gains
// ECS adoption would unlock. Gains are extrapolated by simulating NS vs EU
// mapping for the ISP-resolver clients in each distance band.
func AdoptionExtrapolation(lab *Lab) ([]AdoptionBand, *Report) {
	scorer := mapping.NewScorer(lab.World, lab.Platform, lab.Net, 1500)
	bands := []AdoptionBand{
		{DistanceLo: 1000, DistanceHi: 1e9},
		{DistanceLo: 500, DistanceHi: 1000},
		{DistanceLo: 100, DistanceHi: 500},
		{DistanceLo: 0, DistanceHi: 100},
	}
	var totalNonPublic float64
	type agg struct{ ns, eu, demand float64 }
	accs := make([]agg, len(bands))
	for _, b := range lab.World.Blocks {
		if b.LDNS.IsPublic() {
			continue
		}
		totalNonPublic += b.Demand
		dist := b.ClientLDNSDistance()
		for i := range bands {
			if dist < bands[i].DistanceLo || dist >= bands[i].DistanceHi {
				continue
			}
			nsDep, _ := scorer.Best(b.LDNS.Endpoint())
			euDep, _ := scorer.Best(b.Endpoint())
			if nsDep == nil || euDep == nil {
				break
			}
			accs[i].ns += b.Demand * lab.Net.BaseRTTMs(nsDep.Endpoint(), b.Endpoint())
			accs[i].eu += b.Demand * lab.Net.BaseRTTMs(euDep.Endpoint(), b.Endpoint())
			accs[i].demand += b.Demand
			break
		}
	}
	rep := &Report{
		ID:      "sec4.5",
		Caption: "ECS adoption extrapolation for ISP-resolver clients",
		Columns: []string{"distance-band-mi", "pct-of-non-public-demand", "predicted-rtt-gain-pct"},
	}
	for i := range bands {
		if accs[i].demand > 0 && totalNonPublic > 0 {
			bands[i].DemandShare = accs[i].demand / totalNonPublic
			bands[i].PredictedRTTGain = 1 - accs[i].eu/accs[i].ns
		}
		hi := fmt.Sprintf("%.0f", bands[i].DistanceHi)
		if bands[i].DistanceHi >= 1e9 {
			hi = "inf"
		}
		rep.Rows = append(rep.Rows, row(
			fmt.Sprintf("%.0f-%s", bands[i].DistanceLo, hi),
			100*bands[i].DemandShare, 100*bands[i].PredictedRTTGain))
	}
	return bands, rep
}
