package experiments

import (
	"strings"
	"testing"

	"eum/internal/par"
)

// smallGridLab is the shared substrate for the grid tests: built once,
// the grids are read-only over it.
var smallGridLab = NewLab(Small, 2)

func TestECSGridShape(t *testing.T) {
	results, rep, err := ECSGrid(smallGridLab, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("got %d cells, want 7 (no-ecs + 3 adoptions x 2 prefixes)", len(results))
	}
	if len(rep.Rows) != len(results) {
		t.Fatalf("report has %d rows for %d cells", len(rep.Rows), len(results))
	}
	byName := map[string]int{}
	for i, r := range results {
		byName[r.Name] = i
	}
	base := results[byName["no-ecs"]]
	for _, name := range []string{"public-only /20", "public-only /24", "public+large-isp /20", "public+large-isp /24", "universal /20", "universal /24"} {
		i, ok := byName[name]
		if !ok {
			t.Fatalf("missing cell %q (have %v)", name, byName)
		}
		if results[i].MeanDistance >= base.MeanDistance {
			t.Errorf("cell %q mean distance %.1f >= no-ecs baseline %.1f: ECS adoption should shorten mapping distance",
				name, results[i].MeanDistance, base.MeanDistance)
		}
	}
	// More adoption helps more: universal full ECS beats public-only full ECS.
	if results[byName["universal /24"]].MeanDistance >= results[byName["public-only /24"]].MeanDistance {
		t.Errorf("universal /24 distance %.1f >= public-only /24 distance %.1f",
			results[byName["universal /24"]].MeanDistance, results[byName["public-only /24"]].MeanDistance)
	}
	// A finer reveal can't hurt: full /24 is at least as good as truncated
	// /20 under the same adoption.
	for _, a := range []string{"public-only", "public+large-isp", "universal"} {
		if results[byName[a+" /24"]].MeanDistance > results[byName[a+" /20"]].MeanDistance+1e-9 {
			t.Errorf("%s: /24 distance %.2f worse than /20 distance %.2f",
				a, results[byName[a+" /24"]].MeanDistance, results[byName[a+" /20"]].MeanDistance)
		}
	}
}

func TestECSGridRejectsBadTruncation(t *testing.T) {
	for _, bits := range []uint8{25, 32, 255} {
		if _, _, err := ECSGrid(smallGridLab, bits); err == nil {
			t.Errorf("ECSGrid accepted truncation /%d, more specific than the /24 mapping unit", bits)
		}
	}
	if err := ValidateECSTruncation(0); err == nil {
		t.Error("ValidateECSTruncation accepted /0")
	}
	if err := ValidateECSTruncation(24); err != nil {
		t.Errorf("ValidateECSTruncation rejected /24: %v", err)
	}
}

func TestAmpGridShape(t *testing.T) {
	results, rep, err := AmpGrid(smallGridLab, []uint8{8, 16, 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d cells, want 4 (no-ecs + 3 prefixes)", len(results))
	}
	if len(rep.Rows) != len(results) {
		t.Fatalf("report has %d rows for %d cells", len(rep.Rows), len(results))
	}
	if results[0].AuthQueryMultiplier != 1 || results[0].PublicQueryMultiplier != 1 {
		t.Fatalf("baseline amplification = %v/%v, want exactly 1",
			results[0].AuthQueryMultiplier, results[0].PublicQueryMultiplier)
	}
	// Public-resolver amplification grows with the revealed prefix length:
	// finer scopes shard the per-scope answer caches into more entries, so
	// more of the public resolvers' queries miss. Non-decreasing at every
	// step (a /8 reveal can legitimately tie no-ECS when all of a
	// resolver's clients share one /8), strictly higher by the unit.
	for i := 1; i < len(results); i++ {
		if results[i].PublicQueryMultiplier < results[i-1].PublicQueryMultiplier {
			t.Errorf("public amplification decreasing: %s=%.3f after %s=%.3f",
				results[i].Name, results[i].PublicQueryMultiplier,
				results[i-1].Name, results[i-1].PublicQueryMultiplier)
		}
		if results[i].CacheEntries < results[i-1].CacheEntries {
			t.Errorf("cache entries shrank: %s=%d after %s=%d",
				results[i].Name, results[i].CacheEntries,
				results[i-1].Name, results[i-1].CacheEntries)
		}
	}
	// The /24 reveal is the paper's ~8x regime for public resolvers; leave
	// slack for the small lab but insist the effect is a clear multiple,
	// while the total (ISP resolvers included) moves much less.
	last := results[len(results)-1]
	if last.PublicQueryMultiplier < 2 {
		t.Errorf("/24 public amplification = %.2f, want a clear multiple of the no-ECS rate", last.PublicQueryMultiplier)
	}
	if last.AuthQueryMultiplier >= last.PublicQueryMultiplier {
		t.Errorf("total amplification %.2f >= public amplification %.2f: ISP resolvers should dilute the total",
			last.AuthQueryMultiplier, last.PublicQueryMultiplier)
	}
}

func TestAmpGridRejectsBadPrefix(t *testing.T) {
	if _, _, err := AmpGrid(smallGridLab, []uint8{8, 25}); err == nil {
		t.Error("AmpGrid accepted prefix /25, more specific than the /24 mapping unit")
	}
}

// gridReports renders both grids' tables for the worker-invariance check.
func gridReports(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	_, rep, err := ECSGrid(smallGridLab, 20)
	if err != nil {
		t.Fatal(err)
	}
	sb.WriteString(rep.Table())
	_, rep, err = AmpGrid(smallGridLab, []uint8{12, 24})
	if err != nil {
		t.Fatal(err)
	}
	sb.WriteString(rep.Table())
	return sb.String()
}

// TestGridWorkerCountInvariant: the grid sweeps must be byte-identical at
// any worker count — the same contract as TestSweepWorkerCountInvariant,
// but cheap enough to run in -short mode too.
func TestGridWorkerCountInvariant(t *testing.T) {
	par.SetWorkers(1)
	serial := gridReports(t)
	par.SetWorkers(8)
	parallel := gridReports(t)
	par.SetWorkers(0)

	if serial != parallel {
		a, b := strings.Split(serial, "\n"), strings.Split(parallel, "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("grid reports diverge at line %d:\n  workers=1: %s\n  workers=8: %s", i, a[i], b[i])
			}
		}
		t.Fatalf("grid reports differ in length: %d vs %d lines", len(a), len(b))
	}
}
