package experiments

import (
	"eum/internal/mapping"
	"eum/internal/stats"
)

// StabilityRow summarises the network-path properties of one policy's
// assignments across the public-resolver client population.
type StabilityRow struct {
	Policy mapping.Policy
	// MeanASCrossings is the demand-weighted mean number of AS
	// boundaries between client and assigned server.
	MeanASCrossings float64
	// MeanLossPct is the demand-weighted mean path loss rate (%).
	MeanLossPct float64
	// MeanRTTMs is the demand-weighted mean client-server RTT.
	MeanRTTMs float64
}

// PathStability quantifies the paper's §4.4 observation: "the decrease in
// mapping distance and RTT due to end-user mapping often means that the
// client-server path crosses fewer AS boundaries, peering points and
// transnational cable links, hence reducing the likelihood of congestion
// and failure." It assigns every public-resolver client under NS and EU
// mapping and compares the assigned paths' AS crossings and loss.
func PathStability(lab *Lab) ([]StabilityRow, *Report) {
	scorer := mapping.NewScorer(lab.World, lab.Platform, lab.Net, 1000)
	var out []StabilityRow
	rep := &Report{
		ID:      "sec4.4",
		Caption: "Path stability: AS crossings and loss under NS vs EU mapping",
		Columns: []string{"policy", "mean-as-crossings", "mean-loss-pct", "mean-rtt-ms"},
	}
	for _, pol := range []mapping.Policy{mapping.NSBased, mapping.EndUser} {
		var crossings, loss, rtt stats.Dataset
		for _, b := range lab.World.Blocks {
			if !b.LDNS.IsPublic() {
				continue
			}
			var target = b.Endpoint()
			if pol == mapping.NSBased {
				target = b.LDNS.Endpoint()
			}
			dep, _ := scorer.Best(target)
			if dep == nil {
				continue
			}
			client := b.Endpoint()
			crossings.Add(float64(lab.Net.ASCrossings(client, dep.Endpoint())), b.Demand)
			loss.Add(100*lab.Net.Loss(client, dep.Endpoint()), b.Demand)
			rtt.Add(lab.Net.BaseRTTMs(client, dep.Endpoint()), b.Demand)
		}
		r := StabilityRow{
			Policy:          pol,
			MeanASCrossings: crossings.Mean(),
			MeanLossPct:     loss.Mean(),
			MeanRTTMs:       rtt.Mean(),
		}
		out = append(out, r)
		rep.Rows = append(rep.Rows, row(pol.String(), r.MeanASCrossings, r.MeanLossPct, r.MeanRTTMs))
	}
	return out, rep
}
