package experiments

import (
	"time"

	"eum/internal/mapping"
	"eum/internal/measure"
	"eum/internal/netmodel"
)

// FreshnessRow is one sweep-cadence's outcome.
type FreshnessRow struct {
	// SweepEveryDays is the measurement sweep interval.
	SweepEveryDays int
	// MeanRealizedMs is the demand-weighted mean latency clients actually
	// experienced under decisions driven by measurements of that age.
	MeanRealizedMs float64
	// Probes is the total number of measurement probes spent.
	Probes int
}

// MeasurementFreshness quantifies the design choice behind the paper's
// split of the measurement component into "periodic" and "real-time"
// halves (Fig 3): mapping decisions made from stale path measurements miss
// congestion shifts, so realized client latency degrades as the sweep
// interval grows — while probe cost shrinks. The experiment runs a
// horizon of days; each day, end-user mapping decisions for a sample of
// client blocks are made from the measurement DB (last sweep's view) and
// evaluated against the network's actual state that day.
func MeasurementFreshness(lab *Lab, scale Scale) ([]FreshnessRow, *Report) {
	horizon := 30
	sample := 300
	if scale == Small {
		horizon = 15
		sample = 150
	}
	blocks := topBlocks(lab.World, sample)
	targets := make([]netmodel.Endpoint, len(blocks))
	for i, b := range blocks {
		targets[i] = b.Endpoint()
	}
	start := time.Date(2014, 5, 1, 0, 0, 0, 0, time.UTC)

	var rows []FreshnessRow
	rep := &Report{
		ID:      "freshness",
		Caption: "Mapping quality vs measurement sweep interval",
		Columns: []string{"sweep-every-days", "mean-realized-ms", "probes"},
	}
	for _, every := range []int{1, 7, 30} {
		db := measure.NewDB(lab.Net)
		dbScorer := mapping.NewScorer(lab.World, lab.Platform, db, 0)

		var sumMs, sumW float64
		probes := 0
		for day := 0; day < horizon; day++ {
			now := start.AddDate(0, 0, day)
			if day%every == 0 {
				probes += db.Sweep(now, lab.Platform, targets)
				dbScorer.Invalidate()
			}
			epoch := measure.EpochOf(now)
			for i, b := range blocks {
				dep, _ := dbScorer.Best(targets[i])
				if dep == nil {
					continue
				}
				sumMs += b.Demand * lab.Net.PingMsAt(dep.Endpoint(), targets[i], epoch)
				sumW += b.Demand
			}
		}
		r := FreshnessRow{
			SweepEveryDays: every,
			MeanRealizedMs: sumMs / sumW,
			Probes:         probes,
		}
		rows = append(rows, r)
		rep.Rows = append(rep.Rows, row(every, r.MeanRealizedMs, r.Probes))
	}
	return rows, rep
}
