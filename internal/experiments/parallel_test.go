package experiments

import (
	"strings"
	"testing"

	"eum/internal/par"
)

// sweepReports builds a lab and runs the full analysis sweep, returning
// every report table concatenated. Building the lab inside the sweep makes
// the check cover world/platform generation as well as the figures.
func sweepReports(t *testing.T) string {
	t.Helper()
	l := NewLab(Small, 2)
	var sb strings.Builder
	add := func(rep *Report) { sb.WriteString(rep.Table()) }

	_, rep := Fig05ClientLDNSHistogram(l)
	add(rep)
	_, rep = Fig06DistanceByCountry(l)
	add(rep)
	_, rep = Fig07PublicResolverHistogram(l)
	add(rep)
	_, rep = Fig08PublicByCountry(l)
	add(rep)
	_, rep = Fig09PublicAdoption(l)
	add(rep)
	_, rep = Fig10DistanceByASSize(l)
	add(rep)
	_, rep = Fig11ClusterRadius(l)
	add(rep)
	_, rep = Fig21MappingUnitCoverage(l)
	add(rep)
	_, rep = Fig22PrefixTradeoff(l)
	add(rep)
	_, rep = Fig25DeploymentSweep(l, Fig25Config{
		Ns: []int{40, 80}, Runs: 2, PingTargets: 300, MaxBlocks: 800,
	})
	add(rep)
	_, rep = AdoptionExtrapolation(l)
	add(rep)
	_, rep = TrafficClasses(l)
	add(rep)
	_, rep, err := ClosedLoopFlashCrowd(l, ClosedLoopConfig{})
	if err != nil {
		t.Fatal(err)
	}
	add(rep)
	_, rep, err = BrownoutZipf(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	add(rep)
	_, rep, err = BalanceFrontier(l, []float64{0, 2}, "")
	if err != nil {
		t.Fatal(err)
	}
	add(rep)
	return sb.String()
}

// TestSweepWorkerCountInvariant is the package's determinism contract:
// every figure report must be byte-identical whether the sweep ran on one
// worker or eight.
func TestSweepWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep twice")
	}
	par.SetWorkers(1)
	serial := sweepReports(t)
	par.SetWorkers(8)
	parallel := sweepReports(t)
	par.SetWorkers(0)

	if serial != parallel {
		a, b := strings.Split(serial, "\n"), strings.Split(parallel, "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("reports diverge at line %d:\n  workers=1: %s\n  workers=8: %s", i, a[i], b[i])
			}
		}
		t.Fatalf("reports differ in length: %d vs %d lines", len(a), len(b))
	}
}
