package experiments

import (
	"eum/internal/geodb"
	"eum/internal/mapping"
	"eum/internal/netmodel"
	"eum/internal/overlay"
	"eum/internal/par"
	"eum/internal/simulation"
	"eum/internal/stats"
)

// simulationBroadRollout indirection keeps the experiment signature simple.
func simulationBroadRollout(lab *Lab) (*simulation.BroadRolloutResult, error) {
	return simulation.RunBroadRollout(lab.World, lab.Platform, lab.Net, 8)
}

// GeoErrorRow is one geolocation-error level's outcome.
type GeoErrorRow struct {
	// MislocateFraction of client prefixes were displaced.
	MislocateFraction float64
	// ErrorMiles is the displacement magnitude.
	ErrorMiles float64
	// MeanRTTMs is the demand-weighted mean client RTT under EU mapping
	// decisions made with the erroneous geolocation.
	MeanRTTMs float64
	// P95RTTMs is the 95th percentile.
	P95RTTMs float64
}

// GeoErrorImpact measures how sensitive end-user mapping is to
// geolocation error. The mapping system clusters client blocks to ping
// targets by geographic proximity (§6's measurement methodology, built on
// the Edgescape-style database of §2.2); when a block's database location
// is wrong, it inherits the wrong target's measurements and may be mapped
// to a distant cluster. The experiment distorts a fraction of client
// locations by a fixed distance, makes EU decisions with the distorted
// view, and evaluates the true realized RTT.
func GeoErrorImpact(lab *Lab) ([]GeoErrorRow, *Report) {
	blocks := topBlocks(lab.World, 1500)

	var out []GeoErrorRow
	rep := &Report{
		ID:      "geoerr",
		Caption: "EU mapping quality vs geolocation error",
		Columns: []string{"mislocated-pct", "error-mi", "mean-rtt-ms", "p95-rtt-ms"},
	}
	for _, lvl := range []struct {
		frac  float64
		miles float64
	}{{0, 0}, {0.1, 250}, {0.3, 250}, {0.3, 1000}} {
		db := geodb.Build(lab.World, geodb.Options{
			Seed: 11, MislocateFraction: lvl.frac, ErrorMiles: lvl.miles,
		})
		// A fresh scorer per level: target assignment caches key on
		// endpoint identity, and each level distorts locations differently.
		scorer := mapping.NewScorer(lab.World, lab.Platform, lab.Net, 1000)
		parts := par.MapShards(len(blocks), func(_, lo, hi int) *stats.Dataset {
			d := &stats.Dataset{}
			for _, b := range blocks[lo:hi] {
				// The mapping system sees the database's view of the client.
				seen := b.Endpoint()
				if e, ok := db.Locate(b.Prefix.Addr()); ok {
					seen.Loc = e.Loc
				}
				dep, _ := scorer.Best(seen)
				if dep == nil {
					continue
				}
				// The client's experience uses the true location.
				d.Add(lab.Net.BaseRTTMs(dep.Endpoint(), b.Endpoint()), b.Demand)
			}
			return d
		})
		var rtt stats.Dataset
		for _, p := range parts {
			rtt.Merge(p)
		}
		r := GeoErrorRow{
			MislocateFraction: lvl.frac,
			ErrorMiles:        lvl.miles,
			MeanRTTMs:         rtt.Mean(),
			P95RTTMs:          rtt.Percentile(95),
		}
		out = append(out, r)
		rep.Rows = append(rep.Rows, row(100*lvl.frac, lvl.miles, r.MeanRTTMs, r.P95RTTMs))
	}
	return out, rep
}

// BroadRolloutReport runs the §8 what-if (simulation.RunBroadRollout) and
// formats it as a figure report.
func BroadRolloutReport(lab *Lab) (*Report, error) {
	res, err := simulationBroadRollout(lab)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "sec8",
		Caption: "Broad ECS adoption what-if: no ECS vs public-only vs universal",
		Columns: []string{"stage", "mean-rtt-ms", "p95-rtt-ms", "mean-dist-mi", "auth-query-x"},
	}
	for _, st := range res.Stages {
		rep.Rows = append(rep.Rows, row(st.Name, st.MeanRTTMs, st.P95RTTMs, st.MeanDistance, st.AuthQueryMultiplier))
	}
	return rep, nil
}

// OverlayRow reports the overlay transport's benefit for origin fetches.
type OverlayRow struct {
	// Epoch is the congestion epoch evaluated.
	Epoch uint64
	// RelayedPct is the share of server-origin pairs served via a relay.
	RelayedPct float64
	// MeanImprovementPct is the mean latency reduction across all pairs.
	MeanImprovementPct float64
	// RelayedImprovementPct restricts the mean to relayed pairs.
	RelayedImprovementPct float64
}

// OverlayBenefit quantifies the overlay-transport substrate (§4.1's
// origin acceleration): across server-origin pairs and several congestion
// epochs, how often a one-hop relay beats the direct Internet path and by
// how much.
func OverlayBenefit(lab *Lab) ([]OverlayRow, *Report, error) {
	o, err := overlay.New(lab.Platform, lab.Net, 30)
	if err != nil {
		return nil, nil, err
	}
	// Server-origin pairs: edge deployments fetching from distant origin
	// sites (content providers' data centres, placed at far block sites).
	var pairs [][2]netmodel.Endpoint
	for i := 0; i < 150 && i < len(lab.Platform.Deployments); i++ {
		server := lab.Platform.Deployments[i].Endpoint()
		origin := lab.World.Blocks[(i*53+700)%len(lab.World.Blocks)].Endpoint()
		origin.Access = netmodel.AccessBackbone
		pairs = append(pairs, [2]netmodel.Endpoint{server, origin})
	}
	var out []OverlayRow
	rep := &Report{
		ID:      "overlay",
		Caption: "Overlay transport benefit for origin fetches",
		Columns: []string{"epoch", "relayed-pct", "mean-improvement-pct", "relayed-improvement-pct"},
	}
	for _, epoch := range []uint64{1, 2, 3} {
		s := o.Evaluate(pairs, epoch)
		r := OverlayRow{
			Epoch:                 epoch,
			RelayedPct:            100 * s.RelayedFraction,
			MeanImprovementPct:    100 * s.MeanImprovement,
			RelayedImprovementPct: 100 * s.MeanImprovementWhenRelayed,
		}
		out = append(out, r)
		rep.Rows = append(rep.Rows, row(epoch, r.RelayedPct, r.MeanImprovementPct, r.RelayedImprovementPct))
	}
	return out, rep, nil
}

// TrafficClassRow reports one traffic class's chosen-path properties.
type TrafficClassRow struct {
	Class          mapping.TrafficClass
	MeanPingMs     float64
	MeanLossPct    float64
	MeanThroughput float64 // Mbit/s
}

// TrafficClasses compares the per-class scoring functions of §2.2: the
// same platform ranked for web (latency), video (throughput) and
// application (loss) traffic, reporting the properties of the chosen
// paths under each objective.
func TrafficClasses(lab *Lab) ([]TrafficClassRow, *Report) {
	blocks := topBlocks(lab.World, 800)
	var out []TrafficClassRow
	rep := &Report{
		ID:      "classes",
		Caption: "Per-traffic-class scoring: chosen-path properties",
		Columns: []string{"class", "mean-ping-ms", "mean-loss-pct", "mean-throughput-mbps"},
	}
	for _, class := range []mapping.TrafficClass{mapping.ClassWeb, mapping.ClassVideo, mapping.ClassApplication} {
		scorer := mapping.NewClassScorer(lab.World, lab.Platform, lab.Net, class, 800)
		type classPart struct{ ping, loss, tp stats.Dataset }
		parts := par.MapShards(len(blocks), func(_, lo, hi int) *classPart {
			p := &classPart{}
			for _, b := range blocks[lo:hi] {
				ep := b.Endpoint()
				dep, _ := scorer.Best(ep)
				if dep == nil {
					continue
				}
				de := dep.Endpoint()
				p.ping.Add(lab.Net.PingMs(de, ep), b.Demand)
				p.loss.Add(100*lab.Net.Loss(de, ep), b.Demand)
				p.tp.Add(lab.Net.ThroughputMbps(de, ep, 0), b.Demand)
			}
			return p
		})
		var ping, loss, tp stats.Dataset
		for _, p := range parts {
			ping.Merge(&p.ping)
			loss.Merge(&p.loss)
			tp.Merge(&p.tp)
		}
		r := TrafficClassRow{
			Class:          class,
			MeanPingMs:     ping.Mean(),
			MeanLossPct:    loss.Mean(),
			MeanThroughput: tp.Mean(),
		}
		out = append(out, r)
		rep.Rows = append(rep.Rows, row(class.String(), r.MeanPingMs, r.MeanLossPct, r.MeanThroughput))
	}
	return out, rep
}
