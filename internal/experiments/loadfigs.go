package experiments

import (
	"fmt"
	"time"

	"eum/internal/cdn"
	"eum/internal/demand"
	"eum/internal/geo"
	"eum/internal/mapmaker"
	"eum/internal/mapping"
	"eum/internal/stats"
	"eum/internal/world"
)

// loadLoopT0 anchors the simulated clock every closed-loop experiment
// advances; wall time never leaks into the results.
var loadLoopT0 = time.Unix(1_700_000_000, 0)

// ClosedLoopConfig parameterises the closed-loop flash-crowd drill.
// Zero-valued fields take the defaults from DefaultClosedLoopConfig.
type ClosedLoopConfig struct {
	// Country hosts the surge.
	Country string
	// Beta is the snapshot builder's balance factor.
	Beta float64
	// Multiples is the per-round surge intensity (regional demand as a
	// multiple of local capacity): the timeline the loop walks through.
	Multiples []float64
	// Interval is the simulated time between rounds (one load-monitor
	// tick per round).
	Interval time.Duration
	// PingTargets bounds the mapping system's measured endpoint set.
	PingTargets int
}

// DefaultClosedLoopConfig is a surge-and-recede timeline: quiet, ramp to
// 4x local capacity, recede, then enough quiet rounds for the smoothed
// signal to drain and the map to reconverge.
func DefaultClosedLoopConfig() ClosedLoopConfig {
	return ClosedLoopConfig{
		Country:     "DE",
		Beta:        2,
		Multiples:   []float64{0, 1, 2, 4, 4, 2, 1, 0.25, 0, 0, 0, 0},
		Interval:    10 * time.Second,
		PingTargets: 800,
	}
}

func (c ClosedLoopConfig) withDefaults() ClosedLoopConfig {
	d := DefaultClosedLoopConfig()
	if c.Country == "" {
		c.Country = d.Country
	}
	if c.Beta == 0 {
		c.Beta = d.Beta
	}
	if len(c.Multiples) == 0 {
		c.Multiples = d.Multiples
	}
	if c.Interval <= 0 {
		c.Interval = d.Interval
	}
	if c.PingTargets <= 0 {
		c.PingTargets = d.PingTargets
	}
	return c
}

// ClosedLoopRow is one round of the closed-loop drill.
type ClosedLoopRow struct {
	Round        int
	LoadMultiple float64
	// Epoch is the snapshot the round's queries were answered from.
	Epoch uint64
	// SpillFraction is the demand share served outside the surging country.
	SpillFraction float64
	// MeanDistance and P95Distance are demand-weighted client-to-server
	// miles.
	MeanDistance float64
	P95Distance  float64
	// RemapFraction is the fraction of surge blocks whose assigned
	// deployment changed since the previous round.
	RemapFraction float64
	// MaxUtil is the highest deployment utilization after the round's
	// demand landed.
	MaxUtil float64
	// OverloadShare is the fraction of the round's demand sitting above
	// deployment capacity — demand that would be served degraded. The
	// global balancer only places demand over capacity when every
	// candidate is saturated, so this measures how often the published
	// map left a block no unsaturated choice.
	OverloadShare float64
	// Overloaded is the monitor's overloaded-deployment count after the
	// round's tick.
	Overloaded int
}

// ClosedLoopResult is the drill's outcome plus its control-loop health
// counters.
type ClosedLoopResult struct {
	Rows []ClosedLoopRow
	// Notifies / Damped / WindowViolations are the monitor's counters:
	// how often the loop republished, how many crossings the damping
	// interval absorbed, and whether any notification violated the
	// damping window (must be 0).
	Notifies         uint64
	Damped           uint64
	WindowViolations uint64
	// MaxFlips is the worst per-deployment overload state-transition
	// count — the oscillation measure. A clean surge-and-recede pass is
	// at most 2 (one enter, one exit).
	MaxFlips uint64
	// TotalRemaps counts block assignment changes summed over all rounds;
	// a stable loop re-maps each block a bounded number of times, not
	// once per round.
	TotalRemaps int
	// Reconverged reports whether the final round's assignments are
	// identical to the quiet first round's.
	Reconverged bool
}

// ClosedLoopFlashCrowd runs the regional flash crowd with the feedback
// loop closed: each round assigns the surge demand through the published
// map, the load monitor smooths the resulting utilization and republishes
// on threshold crossings, and the next round maps through the shifted
// tables. The paper's mapping system reacts to "liveness, capacity, and
// other real-time information" — this drill checks the reaction is
// proportionate: demand spills while the surge lasts, the map returns to
// proximity when it recedes, and neither transition oscillates.
func ClosedLoopFlashCrowd(lab *Lab, cfg ClosedLoopConfig) (*ClosedLoopResult, *Report, error) {
	cfg = cfg.withDefaults()
	var target *world.Country
	for _, c := range lab.World.Countries {
		if c.Code() == cfg.Country {
			target = c
		}
	}
	if target == nil {
		return nil, nil, fmt.Errorf("experiments: unknown country %q", cfg.Country)
	}
	var localCap, regionDemand float64
	for _, d := range lab.Platform.Deployments {
		if d.Country == cfg.Country {
			localCap += d.Capacity()
		}
	}
	for _, b := range target.Blocks {
		regionDemand += b.Demand
	}
	if localCap == 0 {
		return nil, nil, fmt.Errorf("experiments: no deployments in %q", cfg.Country)
	}

	lab.Platform.ResetLoad()
	defer lab.Platform.ResetLoad()
	sys := mapping.NewSystem(lab.World, lab.Platform, lab.Net, mapping.Config{
		Policy: mapping.EndUser, PingTargets: cfg.PingTargets, BalanceFactor: cfg.Beta,
	})
	mm := mapmaker.New(sys, mapmaker.Config{})
	// EWMA at half the round interval keeps the smoothed signal responsive
	// (a sustained surge crosses within a round) while still draining to
	// zero within the quiet tail.
	lm := mapmaker.NewLoadMonitor(mm, mapmaker.LoadSignalConfig{
		EWMA:         cfg.Interval / 2,
		MinRepublish: cfg.Interval / 2,
		MaxSignalAge: time.Hour,
	})
	now := loadLoopT0
	lm.SetClock(func() time.Time { return now })
	sys.SetUtilizationSource(lm)

	res := &ClosedLoopResult{}
	rep := &Report{
		ID: "loadloop",
		Caption: fmt.Sprintf("Closed-loop flash crowd in %s (beta=%g): surge, spill, recede, reconverge",
			cfg.Country, cfg.Beta),
		Columns: []string{"round", "load-multiple", "epoch", "spill-pct", "mean-dist-mi", "remap-pct", "max-util", "overloaded"},
	}

	var first, prev map[uint64]uint64 // block endpoint ID -> deployment ID
	for r, mult := range cfg.Multiples {
		lab.Platform.ResetLoad()
		// Model the standalone refresh cadence: one periodic rebuild per
		// round, plus whatever ReasonLoad crossings the monitor queued.
		mm.Notify(mapmaker.ReasonPeriodic)
		sn := mm.Sync()

		scale := mult * localCap / regionDemand
		var dist stats.Dataset
		spilled, total := 0.0, 0.0
		cur := make(map[uint64]uint64, len(target.Blocks))
		remapped := 0
		for _, b := range target.Blocks {
			resp, err := sys.MapAt(sn, mapping.Request{
				Domain: "viral.net", LDNS: b.LDNS.Addr, ClientSubnet: b.Prefix,
				Demand: b.Demand * scale,
			})
			if err != nil {
				return nil, nil, err
			}
			id := b.Endpoint().ID
			cur[id] = resp.Deployment.ID
			if prev != nil && prev[id] != resp.Deployment.ID {
				remapped++
			}
			total += b.Demand
			if resp.Deployment.Country != cfg.Country {
				spilled += b.Demand
			}
			dist.Add(geo.Distance(b.Loc, resp.Deployment.Loc), b.Demand)
		}
		maxUtil, overflow, landed := 0.0, 0.0, 0.0
		for _, d := range lab.Platform.Deployments {
			if u := d.Utilisation(); u > maxUtil {
				maxUtil = u
			}
			landed += d.Load()
			if over := d.Load() - d.Capacity(); over > 0 {
				overflow += over
			}
		}
		// Close the loop: the monitor observes this round's utilization at
		// the round boundary and republishes on smoothed crossings.
		now = now.Add(cfg.Interval)
		lm.Tick(lab.Platform, now)

		row1 := ClosedLoopRow{
			Round: r, LoadMultiple: mult, Epoch: sn.Epoch(),
			SpillFraction: spilled / total,
			MeanDistance:  dist.Mean(),
			P95Distance:   dist.Percentile(95),
			MaxUtil:       maxUtil,
			Overloaded:    lm.Overloaded(),
		}
		if landed > 0 {
			row1.OverloadShare = overflow / landed
		}
		if prev != nil {
			row1.RemapFraction = float64(remapped) / float64(len(target.Blocks))
			res.TotalRemaps += remapped
		}
		res.Rows = append(res.Rows, row1)
		rep.Rows = append(rep.Rows, row(r, mult, fmt.Sprint(row1.Epoch), 100*row1.SpillFraction,
			row1.MeanDistance, 100*row1.RemapFraction, fmt.Sprintf("%.2f", maxUtil), row1.Overloaded))
		if first == nil {
			first = cur
		}
		prev = cur
	}

	res.Notifies = lm.Notifies()
	res.Damped = lm.Damped()
	res.WindowViolations = lm.WindowViolations()
	for _, d := range lab.Platform.Deployments {
		if f := lm.Flips(d.ID); f > res.MaxFlips {
			res.MaxFlips = f
		}
	}
	res.Reconverged = true
	for id, dep := range first {
		if prev[id] != dep {
			res.Reconverged = false
			break
		}
	}
	return res, rep, nil
}

// BrownoutRow is one balance-factor setting of the brownout experiment.
type BrownoutRow struct {
	Beta float64
	// BaselineTargetUtil is the browned-out deployment's utilization
	// while still healthy (identical across rows by construction).
	BaselineTargetUtil float64
	// PeakTargetUtil is its worst utilization across the brownout rounds.
	PeakTargetUtil float64
	// FinalTargetUtil is its utilization once the loop settled, averaged
	// over the last two rounds: a closed loop facing demand that exceeds
	// remaining capacity has no stable fixed point (a successful shed
	// drains the very signal that caused it), so the steady state is a
	// small limit cycle and one round is a biased sample of it.
	FinalTargetUtil float64
	// ShedFraction is how much of its baseline demand the final round
	// moved elsewhere. The global balancer's hard capacity spill pins a
	// saturated deployment at exactly its capacity regardless of policy,
	// so this converges to the same value for every beta.
	ShedFraction float64
	// MapShedFraction is how much of the baseline demand whose rank-table
	// head was the target deployment the *published map* moved off it by
	// the final round. At beta=0 the tables never change (the head stays
	// pinned on the browned-out deployment and every shed request pays a
	// per-query rescue spill); with the loop closed the map itself
	// redirects, which is what keeps DNS answers cacheable and consistent.
	MapShedFraction float64
	// MeanDistance is the final round's demand-weighted mapping distance.
	MeanDistance float64
}

// brownoutCapacityFactor is the fractional capacity surviving the
// brownout (a partial failure: cooling, power capping, or a rack down —
// the deployment stays up at reduced capacity). Half capacity at a 0.6
// healthy utilization leaves the deployment offered 1.2x its remaining
// capacity: deep enough to saturate it, shallow enough that a map-level
// shed can bring it back under — the regime where closed-loop feedback
// and per-query rescue spill behave observably differently.
const brownoutCapacityFactor = 0.5

// BrownoutZipf dims the platform's hottest deployment to half capacity
// under Zipf-distributed content demand and compares how the mapping
// plane absorbs it across balance factors. At beta=0 only the hard
// capacity spill in the global load balancer reacts — the deployment
// saturates and sheds at the margin. With the feedback loop on, the
// published map itself moves demand off the browned-out deployment
// before saturation, at a bounded distance cost.
func BrownoutZipf(lab *Lab, betas []float64) ([]BrownoutRow, *Report, error) {
	if len(betas) == 0 {
		betas = []float64{0, 2}
	}
	// The workload: every block's demand split over a Zipf catalogue, so
	// popular domains concentrate on few servers per deployment through
	// consistent hashing, as real caches want.
	cat := demand.MustNewCatalogue(12, 1.1, 9)

	rows := make([]BrownoutRow, 0, len(betas))
	rep := &Report{
		ID:      "brownout",
		Caption: fmt.Sprintf("Deployment brownout to %d%% capacity under Zipf demand, by balance factor", int(100*brownoutCapacityFactor)),
		Columns: []string{"beta", "baseline-util", "peak-util", "final-util", "shed-pct", "map-shed-pct", "mean-dist-mi"},
	}
	for _, beta := range betas {
		row1, err := brownoutRun(lab, cat, beta)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, row1)
		rep.Rows = append(rep.Rows, row(fmt.Sprintf("%g", beta),
			fmt.Sprintf("%.2f", row1.BaselineTargetUtil), fmt.Sprintf("%.2f", row1.PeakTargetUtil),
			fmt.Sprintf("%.2f", row1.FinalTargetUtil), 100*row1.ShedFraction,
			100*row1.MapShedFraction, row1.MeanDistance))
	}
	return rows, rep, nil
}

// brownoutRun is one balance-factor setting: a healthy calibration round,
// then brownout rounds with the loop closed.
func brownoutRun(lab *Lab, cat *demand.Catalogue, beta float64) (BrownoutRow, error) {
	const rounds = 7
	interval := 10 * time.Second

	lab.Platform.ResetLoad()
	defer lab.Platform.ResetLoad()
	sys := mapping.NewSystem(lab.World, lab.Platform, lab.Net, mapping.Config{
		Policy: mapping.EndUser, PingTargets: 800, BalanceFactor: beta,
	})
	mm := mapmaker.New(sys, mapmaker.Config{})
	var lm *mapmaker.LoadMonitor
	now := loadLoopT0
	if beta > 0 {
		// EWMA at the full round interval damps the loop: a penalty
		// overshoot (the map shedding everything at once) decays over
		// several rounds instead of whipsawing the next one.
		lm = mapmaker.NewLoadMonitor(mm, mapmaker.LoadSignalConfig{
			EWMA: interval, MinRepublish: interval / 2, MaxSignalAge: time.Hour,
		})
		lm.SetClock(func() time.Time { return now })
		sys.SetUtilizationSource(lm)
	}

	// Calibration: map the workload once at unit scale to find the
	// most-utilised deployment, then choose the demand scale that puts it
	// at 60% utilization while healthy. Calibrating on utilization (not
	// raw demand) caps the whole platform at 60%, so the brownout is the
	// only overload in the system — warm enough that losing half the
	// target's capacity saturates it, cool enough that nothing else trips
	// the loop.
	demandOf, _, _, err := brownoutAssign(lab, sys, mm, cat, 1)
	if err != nil {
		return BrownoutRow{}, err
	}
	var target *cdn.Deployment
	var peak float64
	for _, d := range lab.Platform.Deployments {
		if u := demandOf[d.ID] / d.Capacity(); u > peak {
			target, peak = d, u
		}
	}
	scale := 0.6 / peak

	res := BrownoutRow{Beta: beta}
	defer target.SetCapacityFactor(1)
	var baselineTargetDemand, baselineHeadDemand float64
	const settled = 2 // rounds averaged: one full period of the limit cycle
	for r := 0; r < rounds; r++ {
		lab.Platform.ResetLoad()
		if r == 1 {
			target.SetCapacityFactor(brownoutCapacityFactor)
		}
		demandOf, headOf, dist, err := brownoutAssign(lab, sys, mm, cat, scale)
		if err != nil {
			return BrownoutRow{}, err
		}
		util := demandOf[target.ID] / target.Capacity()
		switch {
		case r == 0:
			res.BaselineTargetUtil = util
			baselineTargetDemand = demandOf[target.ID]
			baselineHeadDemand = headOf[target.ID]
		default:
			if util > res.PeakTargetUtil {
				res.PeakTargetUtil = util
			}
		}
		if r >= rounds-settled {
			res.FinalTargetUtil += util / settled
			res.ShedFraction += (1 - demandOf[target.ID]/baselineTargetDemand) / settled
			if baselineHeadDemand > 0 {
				res.MapShedFraction += (1 - headOf[target.ID]/baselineHeadDemand) / settled
			}
			res.MeanDistance += dist.Mean() / settled
		}
		now = now.Add(interval)
		if lm != nil {
			lm.Tick(lab.Platform, now)
		}
	}
	return res, nil
}

// brownoutAssign maps every (block, domain) demand share through the
// current snapshot, returning demand by serving deployment (after the
// balancer's per-query spill), demand by the block's published rank-table
// head (before it — what the map alone would do), and the distance
// dataset. One periodic rebuild precedes the pass, as the refresh cadence
// would in a live process.
func brownoutAssign(lab *Lab, sys *mapping.System, mm *mapmaker.MapMaker, cat *demand.Catalogue, scale float64) (demandOf, headOf map[uint64]float64, _ *stats.Dataset, _ error) {
	mm.Notify(mapmaker.ReasonPeriodic)
	sn := mm.Sync()
	demandOf = make(map[uint64]float64, len(lab.Platform.Deployments))
	headOf = make(map[uint64]float64, len(lab.Platform.Deployments))
	var dist stats.Dataset
	for _, b := range lab.World.Blocks {
		if head, _ := sn.Best(b.Endpoint().ID, true); head != nil {
			headOf[head.ID] += b.Demand * scale
		}
		for _, dom := range cat.Domains {
			d := b.Demand * dom.Popularity * scale
			resp, err := sys.MapAt(sn, mapping.Request{
				Domain: dom.Name, LDNS: b.LDNS.Addr, ClientSubnet: b.Prefix, Demand: d,
			})
			if err != nil {
				return nil, nil, nil, err
			}
			demandOf[resp.Deployment.ID] += d
			dist.Add(geo.Distance(b.Loc, resp.Deployment.Loc), d)
		}
	}
	return demandOf, headOf, &dist, nil
}

// FrontierRow is one balance-factor point of the cost-vs-balance
// frontier. Every metric is averaged over the sweep's final rounds: the
// closed loop hunts around its fixed point (a republish sheds load, the
// overload exits, the next periodic rebuild pulls demand back), so a
// single round is a noisy sample of the steady state.
type FrontierRow struct {
	Beta          float64
	MeanDistance  float64
	P95Distance   float64
	MaxUtil       float64
	SpillFraction float64
	// OverloadShare is the steady-state fraction of demand the balancer
	// had to place above capacity — the degradation beta buys down.
	OverloadShare float64
}

// BalanceFrontier sweeps the balance factor under a sustained 2x regional
// overload and traces the frontier the knob buys: proximity cost (mean
// and tail mapping distance) against load balance (worst deployment
// utilization). It is the load-aware companion to Fig 25's
// deployment-count sweep — where Fig 25 trades latency against platform
// size, this trades latency against headroom on a fixed platform.
func BalanceFrontier(lab *Lab, betas []float64, country string) ([]FrontierRow, *Report, error) {
	if len(betas) == 0 {
		betas = []float64{0, 0.5, 1, 2, 4, 8}
	}
	if country == "" {
		country = "DE"
	}
	rows := make([]FrontierRow, 0, len(betas))
	rep := &Report{
		ID:      "frontier",
		Caption: fmt.Sprintf("Balance-factor frontier: proximity cost vs load balance under a 2x surge in %s", country),
		Columns: []string{"beta", "mean-dist-mi", "p95-dist-mi", "max-util", "spill-pct", "overload-pct"},
	}
	const settled = 3 // rounds averaged at the end of the sweep
	for _, beta := range betas {
		cfg := ClosedLoopConfig{
			Country: country,
			Beta:    beta,
			// Enough sustained rounds for the loop to reach its fixed point
			// before the rounds the row averages over.
			Multiples: []float64{0, 2, 2, 2, 2, 2, 2, 2},
		}
		if beta == 0 {
			// withDefaults would turn 0 into the default beta; run the
			// proximity-only baseline through the same loop explicitly.
			cfg.Beta = -1
		}
		res, _, err := ClosedLoopFlashCrowd(lab, cfg)
		if err != nil {
			return nil, nil, err
		}
		row1 := FrontierRow{Beta: beta}
		for _, r := range res.Rows[len(res.Rows)-settled:] {
			row1.MeanDistance += r.MeanDistance / settled
			row1.P95Distance += r.P95Distance / settled
			row1.MaxUtil += r.MaxUtil / settled
			row1.SpillFraction += r.SpillFraction / settled
			row1.OverloadShare += r.OverloadShare / settled
		}
		rows = append(rows, row1)
		rep.Rows = append(rep.Rows, row(fmt.Sprintf("%g", beta), row1.MeanDistance,
			row1.P95Distance, fmt.Sprintf("%.2f", row1.MaxUtil), 100*row1.SpillFraction,
			100*row1.OverloadShare))
	}
	return rows, rep, nil
}
