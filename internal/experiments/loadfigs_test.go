package experiments

import "testing"

// TestClosedLoopFlashCrowd is the control-loop health contract: the map
// must spill while the surge lasts, return to proximity when it recedes,
// and do both without oscillating or violating the damping window.
func TestClosedLoopFlashCrowd(t *testing.T) {
	cfg := DefaultClosedLoopConfig()
	res, rep, err := ClosedLoopFlashCrowd(lab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(cfg.Multiples) {
		t.Fatalf("rows = %d, want one per multiple (%d)", len(res.Rows), len(cfg.Multiples))
	}
	if len(rep.Rows) != len(res.Rows) {
		t.Fatalf("report rows = %d, want %d", len(rep.Rows), len(res.Rows))
	}

	// The loop actually closed: the monitor republished at least once and
	// never broke its own damping contract.
	if res.Notifies == 0 {
		t.Fatal("monitor never notified — the feedback loop did not engage")
	}
	if res.WindowViolations != 0 {
		t.Fatalf("window violations = %d, want 0", res.WindowViolations)
	}

	// No oscillation: a surge-and-recede pass gives each deployment a
	// bounded number of overload state transitions, not one per round.
	if res.MaxFlips > 8 {
		t.Fatalf("max overload flips = %d, want <= 8 (oscillation)", res.MaxFlips)
	}

	// Demand spills at the peak and returns home afterwards.
	peak := 0.0
	for _, r := range res.Rows {
		if r.SpillFraction > peak {
			peak = r.SpillFraction
		}
	}
	if peak < 0.2 {
		t.Fatalf("peak spill fraction = %.3f, want >= 0.2 during a 4x surge", peak)
	}
	last := res.Rows[len(res.Rows)-1]
	if last.SpillFraction != 0 {
		t.Fatalf("final spill fraction = %.3f, want 0 after the surge recedes", last.SpillFraction)
	}
	if last.RemapFraction != 0 {
		t.Fatalf("final remap fraction = %.3f, want 0 once reconverged", last.RemapFraction)
	}
	if !res.Reconverged {
		t.Fatal("assignments did not reconverge to the quiet baseline")
	}

	// Remaps are bounded: each surge block moves a handful of times over
	// the whole 12-round timeline, not once per round per block. (The
	// ceiling leaves headroom over the observed ~6.2/block: the anycast
	// catchment model makes the bound world-shape sensitive.)
	var surgeBlocks int
	for _, c := range lab.World.Countries {
		if c.Code() == cfg.Country {
			surgeBlocks = len(c.Blocks)
		}
	}
	if surgeBlocks == 0 {
		t.Fatalf("no blocks in %s", cfg.Country)
	}
	if max := 7 * surgeBlocks; res.TotalRemaps > max {
		t.Fatalf("total remaps = %d over %d blocks, want <= %d", res.TotalRemaps, surgeBlocks, max)
	}
}

// TestBrownoutZipf checks the experiment separates the two shedding
// mechanisms: at beta=0 every shed request is a per-query rescue spill
// and the published map never moves (the deployment stays pinned at
// capacity); with the loop closed the map itself sheds enough head
// demand to bring the deployment back under capacity, at a bounded
// distance cost.
func TestBrownoutZipf(t *testing.T) {
	rows, rep, err := BrownoutZipf(lab, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(rep.Rows) != 2 {
		t.Fatalf("rows = %d (report %d), want 2", len(rows), len(rep.Rows))
	}
	base, fb := rows[0], rows[1]
	if base.Beta != 0 || fb.Beta <= 0 {
		t.Fatalf("betas = %g, %g; want 0 then >0", base.Beta, fb.Beta)
	}

	// Identical calibration: both runs start the target at the same
	// healthy utilization.
	if d := base.BaselineTargetUtil - fb.BaselineTargetUtil; d > 0.01 || d < -0.01 {
		t.Fatalf("baseline utils diverge: %.3f vs %.3f", base.BaselineTargetUtil, fb.BaselineTargetUtil)
	}

	// Proximity-only: the map never moves, so all shedding is rescue
	// spill and the target stays pinned at exactly its capacity.
	if base.MapShedFraction > 0.01 || base.MapShedFraction < -0.01 {
		t.Fatalf("beta=0 map shed = %.3f, want 0 (tables must not change)", base.MapShedFraction)
	}
	if base.FinalTargetUtil < 0.99 {
		t.Fatalf("beta=0 final util = %.3f, want pinned at 1.0", base.FinalTargetUtil)
	}

	// Closed loop: the published map sheds a real share of the head
	// demand and the deployment comes back under capacity.
	if fb.MapShedFraction < 0.15 {
		t.Fatalf("beta=%g map shed = %.3f, want >= 0.15", fb.Beta, fb.MapShedFraction)
	}
	if fb.FinalTargetUtil >= 0.95 {
		t.Fatalf("beta=%g final util = %.3f, want < 0.95 (map shed should unpin the target)",
			fb.Beta, fb.FinalTargetUtil)
	}

	// The distance price for shedding is bounded: the workload is global
	// and only one deployment's demand moves.
	if fb.MeanDistance > 1.25*base.MeanDistance {
		t.Fatalf("beta=%g mean distance %.1f vs %.1f at beta=0: shed cost too high",
			fb.Beta, fb.MeanDistance, base.MeanDistance)
	}
}

// TestBalanceFrontier checks the knob trades in the advertised direction:
// more balance factor buys less demand stranded above capacity, paid for
// in mapping distance and regional spill.
func TestBalanceFrontier(t *testing.T) {
	betas := []float64{0, 2, 8}
	rows, rep, err := BalanceFrontier(lab, betas, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(betas) || len(rep.Rows) != len(betas) {
		t.Fatalf("rows = %d (report %d), want %d", len(rows), len(rep.Rows), len(betas))
	}
	base := rows[0]
	for _, r := range rows[1:] {
		if r.OverloadShare >= base.OverloadShare {
			t.Errorf("beta=%g overload share %.3f, want < beta=0's %.3f",
				r.Beta, r.OverloadShare, base.OverloadShare)
		}
	}
	high := rows[len(rows)-1]
	if high.MeanDistance <= base.MeanDistance {
		t.Errorf("beta=%g mean distance %.1f, want > beta=0's %.1f (balance costs proximity)",
			high.Beta, high.MeanDistance, base.MeanDistance)
	}
	if high.SpillFraction <= base.SpillFraction {
		t.Errorf("beta=%g spill %.3f, want > beta=0's %.3f",
			high.Beta, high.SpillFraction, base.SpillFraction)
	}
}
