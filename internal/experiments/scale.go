package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"eum/internal/mapping"
)

// ScaleConfig parameterises the snapshot-scale experiment: how many ping
// targets the scorer clusters endpoints onto, and the partition radius.
type ScaleConfig struct {
	PingTargets    int
	PartitionMiles float64
}

// DefaultScaleConfig sizes the mapping plane for the lab scale. The
// partition radius stays fixed (a metro-sized 50 miles); the target set
// grows with the universe so table quality does not degrade.
func DefaultScaleConfig(scale Scale) ScaleConfig {
	switch scale {
	case Huge:
		return ScaleConfig{PingTargets: 4000, PartitionMiles: 50}
	case Full:
		return ScaleConfig{PingTargets: 2000, PartitionMiles: 50}
	default:
		return ScaleConfig{PingTargets: 500, PartitionMiles: 50}
	}
}

// ScaleResult is what the snapshot-scale experiment measured on one lab.
type ScaleResult struct {
	Blocks     int
	LDNSes     int
	Partitions int
	Tables     int

	// FullBuild is a cold re-rank of every table; WarmRepublish is an
	// epoch bump with nothing dirty (the arena is shared wholesale);
	// IncrementalRepublish re-ranks only the tables served by one dirty
	// ping target.
	FullBuild            time.Duration
	WarmRepublish        time.Duration
	IncrementalRepublish time.Duration

	// SnapshotBytes is the published snapshot's resident footprint
	// (partition index + interned arena); IndexBytes is the serving-side
	// address→endpoint index.
	SnapshotBytes uint64
	IndexBytes    uint64
	// BytesPerBlock is total resident mapping state per client block.
	BytesPerBlock float64

	// ServedOK counts sampled end-user queries answered with a live
	// deployment, proving the built map serves.
	ServedOK, ServedTotal int
}

// SnapshotScale measures the mapping plane at the lab's scale: full
// snapshot build time, warm and one-target incremental republish times,
// and resident memory per block. It is the experiment behind
// BENCH_scale.json and `eumsim -fig scale`.
func SnapshotScale(lab *Lab, cfg ScaleConfig) (*ScaleResult, *Report) {
	mcfg := mapping.Config{
		Policy:         mapping.EndUser,
		PingTargets:    cfg.PingTargets,
		PartitionMiles: cfg.PartitionMiles,
	}
	sys := mapping.NewSystem(lab.World, lab.Platform, lab.Net, mcfg)
	b := sys.Builder()

	// Cold full build: invalidate everything, re-rank every table.
	b.MarkMeasurementsDirty()
	t0 := time.Now()
	sn := sys.Rebuild()
	fullBuild := time.Since(t0)

	// Warm republish: nothing dirty, the arena is shared wholesale.
	t0 = time.Now()
	sys.Rebuild()
	warm := time.Since(t0)

	// One ping target's measurements refresh: re-rank only its tables.
	// LDNS 0 always represents its own partition, so the target standing
	// in for it certainly backs a live table.
	if target, ok := sys.Scorer().TargetFor(lab.World.LDNSes[0].Endpoint()); ok {
		b.MarkMeasurementsDirty(target.ID)
	} else {
		b.MarkMeasurementsDirty()
	}
	t0 = time.Now()
	sn = sys.Rebuild()
	incremental := time.Since(t0)

	res := &ScaleResult{
		Blocks:               len(lab.World.Blocks),
		LDNSes:               len(lab.World.LDNSes),
		Partitions:           sn.Partitions(),
		Tables:               sn.Tables(),
		FullBuild:            fullBuild,
		WarmRepublish:        warm,
		IncrementalRepublish: incremental,
		SnapshotBytes:        sn.MemoryBytes(),
		IndexBytes:           sys.IndexBytes(),
	}
	res.BytesPerBlock = float64(res.SnapshotBytes+res.IndexBytes) / float64(res.Blocks)

	// Serve a sample of end-user queries off the built map.
	stride := len(lab.World.Blocks)/1000 + 1
	for i := 0; i < len(lab.World.Blocks); i += stride {
		blk := lab.World.Blocks[i]
		res.ServedTotal++
		resp, err := sys.MapAt(sn, mapping.Request{
			Domain:       "scale.example",
			LDNS:         netip.MustParseAddr("180.0.0.1"),
			ClientSubnet: blk.Prefix,
		})
		if err == nil && resp.Deployment != nil {
			res.ServedOK++
		}
	}

	rep := &Report{
		ID:      "scale",
		Caption: "snapshot scale: build and republish times, resident memory",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"client blocks", fmt.Sprintf("%d", res.Blocks)},
			{"LDNSes", fmt.Sprintf("%d", res.LDNSes)},
			{"partitions", fmt.Sprintf("%d", res.Partitions)},
			{"rank tables (interned)", fmt.Sprintf("%d", res.Tables)},
			{"full build", res.FullBuild.Round(time.Millisecond).String()},
			{"warm republish", res.WarmRepublish.Round(time.Microsecond).String()},
			{"incremental republish (1 target)", res.IncrementalRepublish.Round(time.Microsecond).String()},
			{"snapshot bytes", fmt.Sprintf("%d", res.SnapshotBytes)},
			{"serving index bytes", fmt.Sprintf("%d", res.IndexBytes)},
			{"resident bytes/block", fmt.Sprintf("%.1f", res.BytesPerBlock)},
			{"sampled queries served", fmt.Sprintf("%d/%d", res.ServedOK, res.ServedTotal)},
		},
	}
	return res, rep
}
