package experiments

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"eum/internal/demand"
	"eum/internal/geo"
	"eum/internal/mapping"
	"eum/internal/par"
	"eum/internal/simulation"
	"eum/internal/stats"
)

// Fig02QueryVolume reproduces Fig 2: client requests served versus DNS
// queries resolved by the mapping system, as daily rates over a 12-day
// window (the paper shows Jan 07-19). No roll-out happens in this window;
// the figure's point is the ~20:1 ratio between the two rates.
func Fig02QueryVolume(lab *Lab, scale Scale) ([]simulation.QueryRatePoint, *Report, error) {
	cfg := simulation.DefaultQueryRateConfig()
	cfg.Days = 12
	cfg.RolloutStartDay, cfg.RolloutEndDay = 10000, 10001 // never
	if scale == Small {
		cfg.EventsPerWindow = 120000
	}
	pts, err := simulation.RunQueryRate(lab.World, cfg,
		&simulation.FixedUpstream{TTL: cfg.TTL, Scope: 24})
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{
		ID:      "fig02",
		Caption: "Client requests vs DNS queries resolved (per second, simulated units)",
		Columns: []string{"day", "client-req-ps", "dns-queries-ps", "ratio"},
	}
	for _, p := range pts {
		rep.Rows = append(rep.Rows, row(p.Day, p.ClientQPS, p.AuthQPS, p.ClientQPS/p.AuthQPS))
	}
	return pts, rep, nil
}

// Fig21Result holds the Fig 21 coverage curves and the paper's headline
// coverage counts.
type Fig21Result struct {
	BlockCurve []demand.CoveragePoint
	LDNSCurve  []demand.CoveragePoint
	// Blocks50/95 and LDNS50/95 are the unit counts covering 50%/95% of
	// demand.
	Blocks50, Blocks95 int
	LDNS50, LDNS95     int
}

// Fig21MappingUnitCoverage reproduces Fig 21: how many /24 client blocks
// versus LDNSes account for a given percent of total demand — the scale
// gap end-user mapping must absorb (§5.1).
func Fig21MappingUnitCoverage(lab *Lab) (*Fig21Result, *Report) {
	blocks := demand.BlockDemands(lab.World)
	ldns := demand.LDNSDemands(lab.World)
	res := &Fig21Result{
		BlockCurve: demand.CoverageCurve(blocks),
		LDNSCurve:  demand.CoverageCurve(ldns),
		Blocks50:   demand.UnitsForCoverage(blocks, 0.50),
		Blocks95:   demand.UnitsForCoverage(blocks, 0.95),
		LDNS50:     demand.UnitsForCoverage(ldns, 0.50),
		LDNS95:     demand.UnitsForCoverage(ldns, 0.95),
	}
	rep := &Report{
		ID:      "fig21",
		Caption: "Units needed to cover demand: /24 blocks vs LDNSes",
		Columns: []string{"coverage", "blocks", "ldnses", "ratio"},
	}
	rep.Rows = append(rep.Rows,
		row("50%", res.Blocks50, res.LDNS50, float64(res.Blocks50)/float64(res.LDNS50)),
		row("95%", res.Blocks95, res.LDNS95, float64(res.Blocks95)/float64(res.LDNS95)),
	)
	return res, rep
}

// Fig22Row is one prefix length's trade-off point: unit count versus
// cluster compactness.
type Fig22Row struct {
	PrefixBits int
	// Units is the number of /x clusters with non-zero demand (Fig 22b).
	Units int
	// RadiusP50 is the demand-weighted median cluster radius (Fig 22a).
	RadiusP50 float64
	// Within100mi is the fraction of demand in clusters of radius
	// <= 100 miles.
	Within100mi float64
}

// Fig22PrefixTradeoff reproduces Fig 22: coarser /x client blocks shrink
// the number of mapping units but grow the cluster radius, costing
// accuracy. It also reports the BGP-CIDR aggregation point of §5.1.
func Fig22PrefixTradeoff(lab *Lab) ([]Fig22Row, *Report) {
	rep := &Report{
		ID:      "fig22",
		Caption: "Mapping-unit trade-off per /x prefix length",
		Columns: []string{"prefix", "units", "median-radius-mi", "pct-demand-radius<=100mi"},
	}
	// One worker per prefix length. Cluster keys are visited in sorted
	// order, not map order, so the radius dataset's sample order (and thus
	// its weighted percentiles) is deterministic.
	lengths := []int{8, 10, 12, 14, 16, 18, 20, 22, 24}
	out := par.Map(len(lengths), func(i int) Fig22Row {
		bits := lengths[i]
		u := mapping.PrefixUnits{X: uint8(bits)}
		clusters := mapping.UnitClusters(lab.World, u)
		keys := make([]netip.Prefix, 0, len(clusters))
		for k := range clusters {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if c := keys[a].Addr().Compare(keys[b].Addr()); c != 0 {
				return c < 0
			}
			return keys[a].Bits() < keys[b].Bits()
		})
		var radii stats.Dataset
		for _, k := range keys {
			var pts []geo.Weighted
			var w float64
			for _, b := range clusters[k] {
				pts = append(pts, geo.Weighted{Point: b.Loc, Weight: b.Demand})
				w += b.Demand
			}
			radii.Add(geo.Radius(pts), w)
		}
		return Fig22Row{
			PrefixBits:  bits,
			Units:       len(clusters),
			RadiusP50:   radii.Median(),
			Within100mi: radii.FractionAtOrBelow(100),
		}
	})
	for _, r := range out {
		rep.Rows = append(rep.Rows, row(fmt.Sprintf("/%d", r.PrefixBits), r.Units, r.RadiusP50, 100*r.Within100mi))
	}
	// BGP-CIDR aggregation of /24s (the §5.1 heuristic).
	cidrUnits := mapping.NewCIDRUnits(mapping.PrefixUnits{X: 24}, lab.World.BGPCIDRs())
	rep.Rows = append(rep.Rows, row("cidr(24)", mapping.CountUnits(lab.World, cidrUnits), "", ""))
	return out, rep
}

// Fig23QueryRateIncrease reproduces Fig 23: total DNS queries per second
// at the authoritative name servers across the roll-out, with the public
// resolver component broken out.
func Fig23QueryRateIncrease(lab *Lab, scale Scale) ([]simulation.QueryRatePoint, *Report, error) {
	cfg := simulation.DefaultQueryRateConfig()
	if scale == Small {
		cfg.Days = 30
		cfg.RolloutStartDay, cfg.RolloutEndDay = 12, 18
		cfg.EventsPerWindow = 60000
	}
	pts, err := simulation.RunQueryRate(lab.World, cfg,
		&simulation.FixedUpstream{TTL: cfg.TTL, Scope: 24})
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{
		ID:      "fig23",
		Caption: "Authoritative DNS queries per second across the roll-out",
		Columns: []string{"day", "total-qps", "public-qps"},
	}
	for i, p := range pts {
		if i%max(1, len(pts)/30) == 0 || i == len(pts)-1 {
			rep.Rows = append(rep.Rows, row(p.Day, p.AuthQPS, p.PublicAuthQPS))
		}
	}
	pre, post := pts[cfg.RolloutStartDay/2], pts[len(pts)-1]
	rep.Rows = append(rep.Rows, row("factor", post.AuthQPS/pre.AuthQPS, post.PublicAuthQPS/pre.PublicAuthQPS))
	return pts, rep, nil
}

// Fig24PopularityFactor reproduces Fig 24: factor increase in query rate
// by pre-roll-out (domain, LDNS) popularity.
func Fig24PopularityFactor(lab *Lab, scale Scale) ([]simulation.PopularityBucket, *Report, error) {
	cfg := simulation.DefaultQueryRateConfig()
	if scale == Small {
		cfg.EventsPerWindow = 60000
	}
	buckets, err := simulation.RunPopularity(lab.World, cfg,
		&simulation.FixedUpstream{TTL: cfg.TTL, Scope: 24})
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{
		ID:      "fig24",
		Caption: "Query-rate factor increase vs (domain, LDNS) popularity (queries/TTL)",
		Columns: []string{"popularity", "factor", "pairs", "pct-of-pre-queries"},
	}
	for _, b := range buckets {
		rep.Rows = append(rep.Rows, row(
			fmt.Sprintf("%.1f-%.1f", b.PopularityLo, b.PopularityHi),
			b.FactorIncrease, b.Pairs, 100*b.PreQueryShare))
	}
	return buckets, rep, nil
}

// RolloutFigures bundles Figs 12-20: the roll-out simulation's timelines
// and before/after distributions for all four §4.1 metrics.
type RolloutFigures struct {
	Result *simulation.RolloutResult
}

// RunRolloutFigures runs the roll-out simulation once; the individual
// figure accessors below slice it.
func RunRolloutFigures(lab *Lab, scale Scale) (*RolloutFigures, error) {
	cfg := simulation.DefaultRolloutConfig()
	if scale == Small {
		cfg.Start = time.Date(2014, 2, 20, 0, 0, 0, 0, time.UTC)
		cfg.End = time.Date(2014, 5, 20, 0, 0, 0, 0, time.UTC)
		cfg.DailyMeasurements = 120
	}
	res, err := simulation.RunRollout(lab.World, lab.Platform, lab.Net, cfg)
	if err != nil {
		return nil, err
	}
	return &RolloutFigures{Result: res}, nil
}

// metricReport builds the paired timeline (odd figures 13,15,17,19) and
// before/after CDF summary (even figures 14,16,18,20) for one metric.
func (rf *RolloutFigures) metricReport(id, name, unit string, g *simulation.GroupSeries) *Report {
	rep := &Report{
		ID:      id,
		Caption: fmt.Sprintf("%s (%s): daily means and before/after percentiles", name, unit),
		Columns: []string{"series", "mean", "p25", "p50", "p75", "p95"},
	}
	for _, grp := range []struct {
		label string
		high  bool
	}{{"high", true}, {"low", false}} {
		before, after := simulation.BeforeAfter(g, grp.high, rf.Result)
		for _, phase := range []struct {
			label string
			d     *stats.Dataset
		}{{"before", before}, {"after", after}} {
			rep.Rows = append(rep.Rows, row(
				fmt.Sprintf("%s-exp %s", grp.label, phase.label),
				phase.d.Mean(), phase.d.Percentile(25), phase.d.Percentile(50),
				phase.d.Percentile(75), phase.d.Percentile(95)))
		}
	}
	return rep
}

// Fig13MappingDistance returns the Fig 13/14 report (mapping distance).
func (rf *RolloutFigures) Fig13MappingDistance() *Report {
	return rf.metricReport("fig13-14", "Mapping distance", "miles", &rf.Result.MappingDistance)
}

// Fig15RTT returns the Fig 15/16 report (round-trip time).
func (rf *RolloutFigures) Fig15RTT() *Report {
	return rf.metricReport("fig15-16", "RTT", "ms", &rf.Result.RTT)
}

// Fig17TTFB returns the Fig 17/18 report (time to first byte).
func (rf *RolloutFigures) Fig17TTFB() *Report {
	return rf.metricReport("fig17-18", "TTFB", "ms", &rf.Result.TTFB)
}

// Fig19Download returns the Fig 19/20 report (content download time).
func (rf *RolloutFigures) Fig19Download() *Report {
	return rf.metricReport("fig19-20", "Content download time", "ms", &rf.Result.Download)
}

// Fig12RUMVolume returns the Fig 12 report: RUM measurements per month by
// expectation group.
func (rf *RolloutFigures) Fig12RUMVolume() *Report {
	rep := &Report{
		ID:      "fig12",
		Caption: "RUM measurements per month (weighted volume, high/low expectation)",
		Columns: []string{"month", "high", "low"},
	}
	high := rf.Result.RTT.High.MonthlyMeans()
	low := rf.Result.RTT.Low.MonthlyMeans()
	lowByMonth := map[string]float64{}
	for _, p := range low {
		lowByMonth[p.Start.Format("2006-01")] = p.Weight
	}
	for _, p := range high {
		m := p.Start.Format("2006-01")
		rep.Rows = append(rep.Rows, row(m, p.Weight, lowByMonth[m]))
	}
	return rep
}
