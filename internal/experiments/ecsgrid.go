package experiments

import (
	"fmt"

	"eum/internal/simulation"
	"eum/internal/world"
)

// ValidateECSTruncation checks a truncated-ECS prefix length against the
// IPv4 mapping unit: a truncation must reveal at least one bit and must
// not be more specific than the /24 unit (beyond the unit it is no longer
// a truncation, and the mapping plane would just clamp the scope back).
func ValidateECSTruncation(bits uint8) error {
	if bits < 1 || bits > 24 {
		return fmt.Errorf("experiments: ECS truncation /%d out of range: must be within [1, 24] (the /24 IPv4 mapping unit)", bits)
	}
	return nil
}

// largeISPLDNS returns the LDNS IDs of ISP (non-public) resolvers serving
// at least one block of a Large AS — the "major ISPs flip on ECS" tier of
// the adoption axis. Membership is derived from the client blocks, since
// an LDNS serves whatever blocks the world wired to it.
func largeISPLDNS(w *world.World) map[uint64]bool {
	ids := map[uint64]bool{}
	for _, b := range w.Blocks {
		if b.AS.Large && !b.LDNS.IsPublic() {
			ids[b.LDNS.ID] = true
		}
	}
	return ids
}

// ECSGrid crosses ECS adoption against revealed prefix length: who
// forwards ECS (public resolvers only, public plus the large ISPs, or
// everyone) x what they forward (the privacy-truncated prefix, default
// /20, versus the full /24 mapping unit), against a shared no-ECS
// baseline. The paper's §8 conclusion — broad roll-out is beneficial —
// holds only if truncated reveals still map well; the win column is the
// demand-weighted mean mapping-distance reduction versus no ECS at all.
func ECSGrid(lab *Lab, truncV4 uint8) ([]simulation.ECSCellResult, *Report, error) {
	if truncV4 == 0 {
		truncV4 = world.ECSTruncatedPrefixV4
	}
	if err := ValidateECSTruncation(truncV4); err != nil {
		return nil, nil, err
	}
	large := largeISPLDNS(lab.World)
	adoptions := []struct {
		name    string
		enabled func(l *world.LDNS) bool
	}{
		{"public-only", func(l *world.LDNS) bool { return l.IsPublic() }},
		{"public+large-isp", func(l *world.LDNS) bool { return l.IsPublic() || large[l.ID] }},
		{"universal", func(*world.LDNS) bool { return true }},
	}
	prefixes := []struct {
		name   string
		v4, v6 uint8
	}{
		{fmt.Sprintf("/%d", truncV4), truncV4, world.ECSTruncatedPrefixV6},
		{"/24", world.ECSFullPrefixV4, world.ECSFullPrefixV6},
	}
	cells := []simulation.ECSCell{{Name: "no-ecs"}}
	for _, a := range adoptions {
		for _, p := range prefixes {
			cells = append(cells, simulation.ECSCell{
				Name:     a.name + " " + p.name,
				Enabled:  a.enabled,
				PrefixV4: p.v4,
				PrefixV6: p.v6,
			})
		}
	}
	results, err := simulation.RunECSCells(lab.World, lab.Platform, lab.Net, 8, cells)
	if err != nil {
		return nil, nil, err
	}
	base := results[0].MeanDistance
	rep := &Report{
		ID:      "ecsgrid",
		Caption: fmt.Sprintf("EU-mapping win by ECS adoption x prefix (truncated=/%d, baseline=no-ecs)", truncV4),
		Columns: []string{"cell", "meanDistMi", "meanRTTms", "p95RTTms", "distWinPct"},
	}
	for _, r := range results {
		win := 0.0
		if base > 0 {
			win = 100 * (base - r.MeanDistance) / base
		}
		rep.Rows = append(rep.Rows, row(r.Name, r.MeanDistance, r.MeanRTTMs, r.P95RTTMs, win))
	}
	return results, rep, nil
}

// AmpGrid sweeps the public resolvers' revealed prefix length and reports
// the authoritative-side price: the query-rate multiplier versus no ECS
// (§5.1 — finer reveals split the per-scope answer cache into more
// entries, so more queries miss) and the resolver-cache memory cost
// (§5.2). The paper observed roughly 8x query volume from public
// resolvers once they revealed /24s; that is the pubAmp column (the
// public resolvers' own rate — ISP resolvers never change, so the total
// moves far less, exactly as the paper's Fig 14 total did). pubAmp should
// rise monotonically as the prefix approaches the mapping unit.
func AmpGrid(lab *Lab, prefixes []uint8) ([]simulation.ECSCellResult, *Report, error) {
	if len(prefixes) == 0 {
		prefixes = []uint8{8, 12, 16, 20, 24}
	}
	cells := []simulation.ECSCell{{Name: "no-ecs"}}
	public := func(l *world.LDNS) bool { return l.IsPublic() }
	for _, p := range prefixes {
		if err := ValidateECSTruncation(p); err != nil {
			return nil, nil, err
		}
		cells = append(cells, simulation.ECSCell{
			Name:     fmt.Sprintf("/%d", p),
			Enabled:  public,
			PrefixV4: p,
			PrefixV6: p + 32, // keep the v6 reveal in step (/24 -> /56)
		})
	}
	results, err := simulation.RunECSCells(lab.World, lab.Platform, lab.Net, 8, cells)
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{
		ID:      "ampgrid",
		Caption: "authoritative query amplification vs ECS prefix length (public resolvers)",
		Columns: []string{"prefix", "publicQPS", "pubAmp", "totalAmp", "cacheEntries"},
	}
	for _, r := range results {
		rep.Rows = append(rep.Rows, row(r.Name, r.AuthQPSPublic, r.PublicQueryMultiplier, r.AuthQueryMultiplier, r.CacheEntries))
	}
	return results, rep, nil
}
