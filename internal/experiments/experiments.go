// Package experiments reproduces every figure of the paper's evaluation:
// one exported function per figure, each returning the figure's rows/series
// as structured data plus a text table. The cmd/eumsim binary and the
// repository's benchmarks drive these functions.
//
// The per-experiment index in DESIGN.md maps each figure to the modules
// that implement it; EXPERIMENTS.md records paper-versus-measured values.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"eum/internal/cdn"
	"eum/internal/netmodel"
	"eum/internal/world"
)

// Lab bundles the substrate every experiment runs on: a generated world,
// a deployment universe, and the network model.
type Lab struct {
	World    *world.World
	Platform *cdn.Platform
	Net      *netmodel.Model
}

// Scale selects experiment fidelity.
type Scale int

// Scales: Small runs in seconds (unit tests, quick looks); Full is the
// benchmark scale used for EXPERIMENTS.md numbers; Huge is the
// million-block scale lab used by the snapshot-scale experiment and
// BenchmarkSnapshotScale — figure sweeps at Huge take a long time, it
// exists to exercise the mapping plane, not the figure battery.
const (
	Small Scale = iota
	Full
	Huge
)

// NewLab builds a lab at the given scale, deterministically from the seed.
func NewLab(scale Scale, seed int64) *Lab {
	blocks, deployments := 4000, 400
	switch scale {
	case Full:
		blocks, deployments = 20000, 2642
	case Huge:
		// A million client blocks approaches the paper's real universe
		// (7.6M /24s); 600 deployments keeps rank tables realistically
		// wide without the figure battery's full platform.
		blocks, deployments = 1_000_000, 600
	}
	w := world.MustGenerate(world.Config{Seed: seed, NumBlocks: blocks})
	p := cdn.MustGenerateUniverse(w, cdn.Config{Seed: seed, NumDeployments: deployments, ServersPerDeployment: 8})
	return &Lab{World: w, Platform: p, Net: netmodel.NewDefault()}
}

// Report is a figure reproduction: a caption and printable rows.
type Report struct {
	ID      string
	Caption string
	Columns []string
	Rows    [][]string
}

// Table renders the report as an aligned text table.
func (r *Report) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Caption)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	writeRow(r.Columns)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return sb.String()
}

// row formats cells with %v convenience.
func row(cells ...any) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = fmt.Sprintf("%.1f", v)
		case string:
			out[i] = v
		default:
			out[i] = fmt.Sprint(v)
		}
	}
	return out
}

// sortedCountries returns the lab's countries ordered by descending value.
// Ties break on the country code: the input is a map, so without a total
// order equal-valued countries would come out in random iteration order.
func sortedCountries(vals map[string]float64) []string {
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if vals[keys[i]] != vals[keys[j]] {
			return vals[keys[i]] > vals[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}
