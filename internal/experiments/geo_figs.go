package experiments

import (
	"fmt"
	"math"

	"eum/internal/geo"
	"eum/internal/par"
	"eum/internal/stats"
	"eum/internal/world"
)

// distanceDataset builds demand-weighted client-LDNS distance data,
// optionally restricted to public-resolver clients. Workers fill private
// datasets over block shards; the shard-ordered merge reproduces the
// serial sample order exactly.
func distanceDataset(w *world.World, publicOnly bool) *stats.Dataset {
	parts := par.MapShards(len(w.Blocks), func(_, lo, hi int) *stats.Dataset {
		d := &stats.Dataset{}
		for _, b := range w.Blocks[lo:hi] {
			if publicOnly && !b.LDNS.IsPublic() {
				continue
			}
			d.Add(b.ClientLDNSDistance(), b.Demand)
		}
		return d
	})
	d := &stats.Dataset{}
	for _, p := range parts {
		d.Merge(p)
	}
	return d
}

// Fig05Result is the global client-LDNS distance histogram.
type Fig05Result struct {
	Bins   []stats.HistogramBin
	Median float64
	Mean   float64
}

// Fig05ClientLDNSHistogram reproduces Fig 5: the demand-weighted histogram
// of client-LDNS distance across the global Internet, on a log-10 axis
// from 10 to 10000 miles.
func Fig05ClientLDNSHistogram(lab *Lab) (*Fig05Result, *Report) {
	d := distanceDataset(lab.World, false)
	res := &Fig05Result{
		Bins:   d.LogHistogram(10, 10000, 4),
		Median: d.Median(),
		Mean:   d.Mean(),
	}
	rep := &Report{
		ID:      "fig05",
		Caption: "Histogram of client-LDNS distance (all clients, % of demand)",
		Columns: []string{"miles-lo", "miles-hi", "pct-of-demand"},
	}
	for _, b := range res.Bins {
		rep.Rows = append(rep.Rows, row(fmt.Sprintf("%.0f", b.Lo), fmt.Sprintf("%.0f", b.Hi), 100*b.Fraction))
	}
	rep.Rows = append(rep.Rows, row("median", "", res.Median))
	return res, rep
}

// Fig07PublicResolverHistogram reproduces Fig 7: the same histogram for
// clients who use public resolvers.
func Fig07PublicResolverHistogram(lab *Lab) (*Fig05Result, *Report) {
	d := distanceDataset(lab.World, true)
	res := &Fig05Result{
		Bins:   d.LogHistogram(10, 10000, 4),
		Median: d.Median(),
		Mean:   d.Mean(),
	}
	rep := &Report{
		ID:      "fig07",
		Caption: "Histogram of client-LDNS distance (public resolver clients)",
		Columns: []string{"miles-lo", "miles-hi", "pct-of-demand"},
	}
	for _, b := range res.Bins {
		rep.Rows = append(rep.Rows, row(fmt.Sprintf("%.0f", b.Lo), fmt.Sprintf("%.0f", b.Hi), 100*b.Fraction))
	}
	rep.Rows = append(rep.Rows, row("median", "", res.Median))
	return res, rep
}

// CountryBox is one country's box-plot row.
type CountryBox struct {
	Country string
	Box     stats.Box
	Demand  float64
}

// countryBoxes computes per-country distance box stats, one worker per
// country.
func countryBoxes(w *world.World, publicOnly bool) []CountryBox {
	boxes := par.Map(len(w.Countries), func(i int) *CountryBox {
		c := w.Countries[i]
		var d stats.Dataset
		var demand float64
		for _, b := range c.Blocks {
			if publicOnly && !b.LDNS.IsPublic() {
				continue
			}
			d.Add(b.ClientLDNSDistance(), b.Demand)
			demand += b.Demand
		}
		if d.Len() == 0 {
			return nil
		}
		return &CountryBox{Country: c.Code(), Box: d.BoxStats(), Demand: demand}
	})
	var out []CountryBox
	for _, b := range boxes {
		if b != nil {
			out = append(out, *b)
		}
	}
	// Descending by median, as the paper's figures are ordered.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Box.P50 > out[j-1].Box.P50; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Fig06DistanceByCountry reproduces Fig 6: client-LDNS distance box plots
// (5/25/50/75/95th percentiles) for the top countries by demand.
func Fig06DistanceByCountry(lab *Lab) ([]CountryBox, *Report) {
	boxes := countryBoxes(lab.World, false)
	rep := &Report{
		ID:      "fig06",
		Caption: "Client-LDNS distance by country (miles, p5/p25/p50/p75/p95)",
		Columns: []string{"country", "p5", "p25", "median", "p75", "p95"},
	}
	for _, b := range boxes {
		rep.Rows = append(rep.Rows, row(b.Country, b.Box.P5, b.Box.P25, b.Box.P50, b.Box.P75, b.Box.P95))
	}
	return boxes, rep
}

// Fig08PublicByCountry reproduces Fig 8: the same box plots restricted to
// clients of public resolvers.
func Fig08PublicByCountry(lab *Lab) ([]CountryBox, *Report) {
	boxes := countryBoxes(lab.World, true)
	rep := &Report{
		ID:      "fig08",
		Caption: "Client-LDNS distance for public resolver clients, by country",
		Columns: []string{"country", "p5", "p25", "median", "p75", "p95"},
	}
	for _, b := range boxes {
		rep.Rows = append(rep.Rows, row(b.Country, b.Box.P5, b.Box.P25, b.Box.P50, b.Box.P75, b.Box.P95))
	}
	return boxes, rep
}

// Fig09PublicAdoption reproduces Fig 9: the percent of client demand
// originating from public resolvers, by country.
func Fig09PublicAdoption(lab *Lab) (map[string]float64, *Report) {
	type share struct{ pub, total float64 }
	shares := par.Map(len(lab.World.Countries), func(i int) share {
		var s share
		for _, b := range lab.World.Countries[i].Blocks {
			s.total += b.Demand
			if b.LDNS.IsPublic() {
				s.pub += b.Demand
			}
		}
		return s
	})
	adoption := map[string]float64{}
	for i, c := range lab.World.Countries {
		if shares[i].total > 0 {
			adoption[c.Code()] = shares[i].pub / shares[i].total
		}
	}
	rep := &Report{
		ID:      "fig09",
		Caption: "Percent of client demand from public resolvers, by country",
		Columns: []string{"country", "pct-public"},
	}
	for _, cc := range sortedCountries(adoption) {
		rep.Rows = append(rep.Rows, row(cc, 100*adoption[cc]))
	}
	var worldwide, total float64
	for _, b := range lab.World.Blocks {
		total += b.Demand
		if b.LDNS.IsPublic() {
			worldwide += b.Demand
		}
	}
	rep.Rows = append(rep.Rows, row("WORLD", 100*worldwide/total))
	return adoption, rep
}

// ASSizeBucket is one point of Fig 10: ASes whose demand share falls in
// [2^-Exp2Lo, 2^-Exp2Hi) and the median client-LDNS distance of their
// clients.
type ASSizeBucket struct {
	// ShareLo, ShareHi bound the AS demand share (fraction of total).
	ShareLo, ShareHi float64
	MedianDistance   float64
	NumASes          int
}

// Fig10DistanceByASSize reproduces Fig 10: median client-LDNS distance as
// a function of AS size (the AS's share of global demand), over buckets
// 2^-10 .. 2^-1 as in the paper.
func Fig10DistanceByASSize(lab *Lab) ([]ASSizeBucket, *Report) {
	rep := &Report{
		ID:      "fig10",
		Caption: "Median client-LDNS distance vs AS size (share of demand)",
		Columns: []string{"share-lo", "share-hi", "median-miles", "ases"},
	}
	// One worker per exponent bucket; each bucket scans the AS list
	// independently.
	type bucket struct {
		b ASSizeBucket
		e int
	}
	buckets := par.Map(10, func(i int) *bucket {
		e := 10 - i
		lo := math.Pow(2, -float64(e+1))
		hi := math.Pow(2, -float64(e))
		var d stats.Dataset
		n := 0
		for _, as := range lab.World.ASes {
			if as.Demand < lo || as.Demand >= hi {
				continue
			}
			n++
			for _, b := range as.Blocks {
				d.Add(b.ClientLDNSDistance(), b.Demand)
			}
		}
		if d.Len() == 0 {
			return nil
		}
		return &bucket{
			b: ASSizeBucket{ShareLo: lo, ShareHi: hi, MedianDistance: d.Median(), NumASes: n},
			e: e,
		}
	})
	var out []ASSizeBucket
	for _, bk := range buckets {
		if bk == nil {
			continue
		}
		out = append(out, bk.b)
		rep.Rows = append(rep.Rows, row(
			fmt.Sprintf("2^-%d", bk.e+1), fmt.Sprintf("2^-%d", bk.e), bk.b.MedianDistance, bk.b.NumASes))
	}
	return out, rep
}

// Fig11Result holds the four CDFs of Fig 11.
type Fig11Result struct {
	RadiusAll     []stats.CDFPoint
	MeanDistAll   []stats.CDFPoint
	RadiusPub     []stats.CDFPoint
	MeanDistPub   []stats.CDFPoint
	PubRadiusP1   float64 // 1st percentile of public cluster radius
	PubRadiusP99  float64
	PubMeanExceed float64 // fraction of public demand where mean dist > radius
}

// Fig11ClusterRadius reproduces Fig 11: CDFs of client-cluster radius and
// mean client-LDNS distance, for all LDNSes and for public resolvers,
// weighted by LDNS demand.
func Fig11ClusterRadius(lab *Lab) (*Fig11Result, *Report) {
	// The per-LDNS cluster geometry dominates; shard the LDNS list and
	// merge the partial datasets in shard order.
	type fig11Part struct {
		radAll, distAll, radPub, distPub stats.Dataset
		pubExceed, pubTotal              float64
	}
	parts := par.MapShards(len(lab.World.LDNSes), func(_, lo, hi int) *fig11Part {
		p := &fig11Part{}
		for _, l := range lab.World.LDNSes[lo:hi] {
			if len(l.Blocks) == 0 {
				continue
			}
			pts := make([]geo.Weighted, 0, len(l.Blocks))
			for _, b := range l.Blocks {
				pts = append(pts, geo.Weighted{Point: b.Loc, Weight: b.Demand})
			}
			radius := geo.Radius(pts)
			meanDist := geo.MeanDistanceTo(pts, l.Loc)
			p.radAll.Add(radius, l.Demand)
			p.distAll.Add(meanDist, l.Demand)
			if l.IsPublic() {
				p.radPub.Add(radius, l.Demand)
				p.distPub.Add(meanDist, l.Demand)
				p.pubTotal += l.Demand
				if meanDist > radius {
					p.pubExceed += l.Demand
				}
			}
		}
		return p
	})
	var radAll, distAll, radPub, distPub stats.Dataset
	var pubExceed, pubTotal float64
	for _, p := range parts {
		radAll.Merge(&p.radAll)
		distAll.Merge(&p.distAll)
		radPub.Merge(&p.radPub)
		distPub.Merge(&p.distPub)
		pubExceed += p.pubExceed
		pubTotal += p.pubTotal
	}
	res := &Fig11Result{
		RadiusAll:    radAll.CDF(60),
		MeanDistAll:  distAll.CDF(60),
		RadiusPub:    radPub.CDF(60),
		MeanDistPub:  distPub.CDF(60),
		PubRadiusP1:  radPub.Percentile(1),
		PubRadiusP99: radPub.Percentile(99),
	}
	if pubTotal > 0 {
		res.PubMeanExceed = pubExceed / pubTotal
	}
	rep := &Report{
		ID:      "fig11",
		Caption: "Cluster radius and mean client-LDNS distance (miles, demand-weighted)",
		Columns: []string{"series", "p25", "p50", "p75", "p95"},
	}
	for _, s := range []struct {
		name string
		d    *stats.Dataset
	}{
		{"radius (all LDNS)", &radAll},
		{"mean client-LDNS dist (all LDNS)", &distAll},
		{"radius (public)", &radPub},
		{"mean client-LDNS dist (public)", &distPub},
	} {
		rep.Rows = append(rep.Rows, row(s.name,
			s.d.Percentile(25), s.d.Percentile(50), s.d.Percentile(75), s.d.Percentile(95)))
	}
	rep.Rows = append(rep.Rows, row("public demand with mean dist > radius (%)",
		100*res.PubMeanExceed, "", "", ""))
	return res, rep
}
