package experiments

import (
	"strconv"
	"strings"
	"testing"

	"eum/internal/mapping"
	"eum/internal/stats"
)

// The lab is shared across the package's tests; experiments must not
// mutate it.
var lab = NewLab(Small, 1)

func TestReportTable(t *testing.T) {
	r := &Report{
		ID:      "x",
		Caption: "caption",
		Columns: []string{"a", "longer"},
		Rows:    [][]string{{"1", "2"}, {"wide-cell", "3"}},
	}
	tbl := r.Table()
	for _, want := range []string{"caption", "wide-cell", "longer"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	lines := strings.Split(strings.TrimSpace(tbl), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}

func TestFig05HistogramShape(t *testing.T) {
	res, rep := Fig05ClientLDNSHistogram(lab)
	if len(res.Bins) == 0 || len(rep.Rows) == 0 {
		t.Fatal("empty figure")
	}
	var sum float64
	for _, b := range res.Bins {
		sum += b.Fraction
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("bins sum to %v", sum)
	}
	// Paper Fig 5: "nearly half of the client population is located very
	// close to its LDNS" — substantial mass at small distances, plus a
	// visible far tail.
	var near, far float64
	for _, b := range res.Bins {
		if b.Hi <= 120 {
			near += b.Fraction
		}
		if b.Lo >= 2000 {
			far += b.Fraction
		}
	}
	if near < 0.3 {
		t.Errorf("near-LDNS mass = %.2f, want >= 0.3", near)
	}
	if far < 0.05 {
		t.Errorf("far tail mass = %.2f, want >= 0.05", far)
	}
}

func TestFig07PublicFartherThanFig05(t *testing.T) {
	all, _ := Fig05ClientLDNSHistogram(lab)
	pub, _ := Fig07PublicResolverHistogram(lab)
	// Paper: public median 1028 mi vs 162 mi overall.
	if pub.Median < 3*all.Median {
		t.Errorf("public median %.0f not >> overall median %.0f", pub.Median, all.Median)
	}
}

func TestFig06CountryOrdering(t *testing.T) {
	boxes, rep := Fig06DistanceByCountry(lab)
	if len(boxes) != len(lab.World.Countries) {
		t.Fatalf("boxes = %d", len(boxes))
	}
	for i := 1; i < len(boxes); i++ {
		if boxes[i].Box.P50 > boxes[i-1].Box.P50 {
			t.Fatal("boxes not sorted by median")
		}
	}
	// The paper's extremes: IN/TR/VN/MX near the top, KR/TW near the
	// bottom.
	rank := map[string]int{}
	for i, b := range boxes {
		rank[b.Country] = i
	}
	for _, hi := range []string{"IN", "TR", "MX"} {
		if rank[hi] > len(boxes)/2 {
			t.Errorf("%s ranked %d, want top half", hi, rank[hi])
		}
	}
	for _, lo := range []string{"KR", "TW"} {
		if rank[lo] < len(boxes)/2 {
			t.Errorf("%s ranked %d, want bottom half", lo, rank[lo])
		}
	}
	if len(rep.Rows) != len(boxes) {
		t.Error("report rows mismatch")
	}
}

func TestFig08PublicDistances(t *testing.T) {
	boxes, _ := Fig08PublicByCountry(lab)
	byCountry := map[string]CountryBox{}
	for _, b := range boxes {
		byCountry[b.Country] = b
	}
	// Paper: AR and BR have the largest public-resolver distances (no
	// South American provider sites).
	for _, cc := range []string{"AR", "BR"} {
		if b, ok := byCountry[cc]; ok && b.Box.P50 < 2000 {
			t.Errorf("%s public median = %.0f, want large (>2000)", cc, b.Box.P50)
		}
	}
	// Europe/TW/HK are comparatively close to provider sites.
	for _, cc := range []string{"DE", "NL", "TW"} {
		if b, ok := byCountry[cc]; ok && b.Box.P50 > 1200 {
			t.Errorf("%s public median = %.0f, want small", cc, b.Box.P50)
		}
	}
}

func TestFig09Adoption(t *testing.T) {
	adoption, rep := Fig09PublicAdoption(lab)
	// Paper Fig 9: VN and TR are the heaviest users; JP and KR lightest.
	if adoption["VN"] < adoption["JP"] || adoption["TR"] < adoption["KR"] {
		t.Errorf("adoption ordering broken: VN=%.2f TR=%.2f JP=%.2f KR=%.2f",
			adoption["VN"], adoption["TR"], adoption["JP"], adoption["KR"])
	}
	if adoption["VN"] < 0.25 {
		t.Errorf("VN adoption = %.2f, want heavy", adoption["VN"])
	}
	// Worldwide ~8%: the WORLD row is last.
	last := rep.Rows[len(rep.Rows)-1]
	if last[0] != "WORLD" {
		t.Fatal("missing WORLD row")
	}
}

func TestFig10SmallASesFarther(t *testing.T) {
	buckets, _ := Fig10DistanceByASSize(lab)
	if len(buckets) < 3 {
		t.Fatalf("only %d buckets", len(buckets))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].ShareLo <= buckets[i-1].ShareLo {
			t.Fatal("buckets not ordered ascending by share")
		}
	}
	// Paper Fig 10: small ASes (low share) have larger distances. Single
	// buckets are noisy at lab scale, so compare medians computed over
	// the blocks of small (share < 2^-8) vs large (share >= 2^-6) ASes.
	var small, large stats.Dataset
	for _, as := range lab.World.ASes {
		for _, b := range as.Blocks {
			switch {
			case as.Demand < 1.0/256:
				small.Add(b.ClientLDNSDistance(), b.Demand)
			case as.Demand >= 1.0/64:
				large.Add(b.ClientLDNSDistance(), b.Demand)
			}
		}
	}
	if small.Median() <= large.Median() {
		t.Errorf("small-AS median %.0f should exceed large-AS median %.0f",
			small.Median(), large.Median())
	}
}

func TestFig11PublicClustersLarge(t *testing.T) {
	res, _ := Fig11ClusterRadius(lab)
	if len(res.RadiusAll) == 0 || len(res.RadiusPub) == 0 {
		t.Fatal("missing CDFs")
	}
	// Paper §3.3: 99% of public demand comes from clusters with radius
	// between ~470 and ~3800 miles.
	if res.PubRadiusP1 < 200 {
		t.Errorf("public radius p1 = %.0f, want large (>200)", res.PubRadiusP1)
	}
	if res.PubRadiusP99 < 1500 {
		t.Errorf("public radius p99 = %.0f, want >1500", res.PubRadiusP99)
	}
	// And the mean cluster-LDNS distance tends to exceed the radius.
	if res.PubMeanExceed < 0.5 {
		t.Errorf("mean>radius fraction = %.2f, want majority", res.PubMeanExceed)
	}
}

func TestFig02Ratio(t *testing.T) {
	pts, _, err := Fig02QueryVolume(lab, Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 12 {
		t.Fatalf("days = %d", len(pts))
	}
	for _, p := range pts {
		// Paper Fig 2: ~30M client requests/s vs ~1.6M DNS q/s (≈19:1).
		// Caching must make DNS queries a small fraction of requests.
		if p.AuthQPS >= p.ClientQPS/2 {
			t.Errorf("day %d: DNS qps %.0f not well below client qps %.0f",
				p.Day, p.AuthQPS, p.ClientQPS)
		}
	}
}

func TestFig21CoverageGap(t *testing.T) {
	res, _ := Fig21MappingUnitCoverage(lab)
	// Paper: 95% coverage needs 25K LDNSes vs 2.2M blocks (~88x); any
	// strong multiple preserves the conclusion.
	if res.Blocks95 <= res.LDNS95*3 {
		t.Errorf("blocks95=%d ldns95=%d: gap too small", res.Blocks95, res.LDNS95)
	}
	if res.Blocks50 <= res.LDNS50 {
		t.Errorf("blocks50=%d ldns50=%d", res.Blocks50, res.LDNS50)
	}
	last := res.BlockCurve[len(res.BlockCurve)-1]
	if last.CumFraction < 0.999 {
		t.Errorf("block curve ends at %.3f", last.CumFraction)
	}
}

func TestFig22Tradeoff(t *testing.T) {
	rows, rep := Fig22PrefixTradeoff(lab)
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Units < rows[i-1].Units {
			t.Error("units not increasing with prefix length")
		}
		if rows[i].RadiusP50 > rows[i-1].RadiusP50+1 {
			t.Errorf("/%d median radius %.0f exceeds coarser /%d's %.0f",
				rows[i].PrefixBits, rows[i].RadiusP50, rows[i-1].PrefixBits, rows[i-1].RadiusP50)
		}
	}
	// Paper: /20 blocks cut units ~3x vs /24 while staying compact
	// (87.3% of clusters within 100 miles).
	var p20, p24 Fig22Row
	for _, r := range rows {
		if r.PrefixBits == 20 {
			p20 = r
		}
		if r.PrefixBits == 24 {
			p24 = r
		}
	}
	ratio := float64(p24.Units) / float64(p20.Units)
	if ratio < 1.5 {
		t.Errorf("/24 to /20 unit ratio = %.1f, want ~3", ratio)
	}
	if p20.Within100mi < 0.6 {
		t.Errorf("/20 compactness = %.2f, want most clusters small", p20.Within100mi)
	}
	// The CIDR row exists.
	found := false
	for _, r := range rep.Rows {
		if r[0] == "cidr(24)" {
			found = true
		}
	}
	if !found {
		t.Error("missing CIDR aggregation row")
	}
}

func TestFig25Shape(t *testing.T) {
	cfg := DefaultFig25Config(Small)
	cfg.Runs = 2
	pts, rep := Fig25DeploymentSweep(lab, cfg)
	if len(pts) != len(cfg.Ns)*3 {
		t.Fatalf("points = %d", len(pts))
	}
	byKey := map[[2]int]Fig25Point{}
	for _, p := range pts {
		byKey[[2]int{p.Deployments, int(p.Policy)}] = p
	}
	nsSmall := byKey[[2]int{cfg.Ns[0], int(mapping.NSBased)}]
	nsBig := byKey[[2]int{cfg.Ns[len(cfg.Ns)-1], int(mapping.NSBased)}]
	euSmall := byKey[[2]int{cfg.Ns[0], int(mapping.EndUser)}]
	euBig := byKey[[2]int{cfg.Ns[len(cfg.Ns)-1], int(mapping.EndUser)}]
	cansBig := byKey[[2]int{cfg.Ns[len(cfg.Ns)-1], int(mapping.ClientAwareNS)}]

	// More deployments -> lower latency for every scheme.
	if nsBig.MeanMs >= nsSmall.MeanMs || euBig.MeanMs >= euSmall.MeanMs {
		t.Errorf("latency not decreasing with deployments: NS %.1f->%.1f EU %.1f->%.1f",
			nsSmall.MeanMs, nsBig.MeanMs, euSmall.MeanMs, euBig.MeanMs)
	}
	// EU at least matches NS on the mean and clearly wins at P99.
	if euBig.MeanMs > nsBig.MeanMs*1.05 {
		t.Errorf("EU mean %.1f worse than NS %.1f", euBig.MeanMs, nsBig.MeanMs)
	}
	if euBig.P99Ms >= nsBig.P99Ms {
		t.Errorf("EU P99 %.1f not below NS P99 %.1f at max deployments", euBig.P99Ms, nsBig.P99Ms)
	}
	// CANS lands between NS and EU at the tail.
	if !(cansBig.P99Ms <= nsBig.P99Ms*1.02 && cansBig.P99Ms >= euBig.P99Ms*0.98) {
		t.Errorf("CANS P99 %.1f not between EU %.1f and NS %.1f",
			cansBig.P99Ms, euBig.P99Ms, nsBig.P99Ms)
	}
	// EU's P99 advantage grows with deployment count (NS plateaus).
	gapSmall := nsSmall.P99Ms - euSmall.P99Ms
	gapBig := nsBig.P99Ms - euBig.P99Ms
	if gapBig <= gapSmall {
		t.Errorf("EU P99 advantage should grow with deployments: %.1f -> %.1f", gapSmall, gapBig)
	}
	if len(rep.Rows) != len(pts) {
		t.Error("report rows mismatch")
	}
}

func TestAdoptionExtrapolation(t *testing.T) {
	bands, rep := AdoptionExtrapolation(lab)
	if len(bands) != 4 {
		t.Fatalf("bands = %d", len(bands))
	}
	var share float64
	for _, b := range bands {
		share += b.DemandShare
	}
	if share < 0.99 || share > 1.01 {
		t.Errorf("band shares sum to %.2f", share)
	}
	// Far clients gain most (paper: ~50% RTT cut for >1000 mi clients,
	// none for local ones).
	far, near := bands[0], bands[3]
	if far.PredictedRTTGain <= near.PredictedRTTGain {
		t.Errorf("far gain %.2f should exceed near gain %.2f",
			far.PredictedRTTGain, near.PredictedRTTGain)
	}
	if far.PredictedRTTGain < 0.2 {
		t.Errorf("far-band RTT gain = %.2f, want substantial", far.PredictedRTTGain)
	}
	if len(rep.Rows) != 4 {
		t.Error("report rows mismatch")
	}
}

func TestRolloutFiguresReports(t *testing.T) {
	rf, err := RunRolloutFigures(lab, Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range []*Report{
		rf.Fig12RUMVolume(),
		rf.Fig13MappingDistance(),
		rf.Fig15RTT(),
		rf.Fig17TTFB(),
		rf.Fig19Download(),
	} {
		if len(rep.Rows) == 0 {
			t.Errorf("%s: empty report", rep.ID)
		}
		if rep.Table() == "" {
			t.Errorf("%s: empty table", rep.ID)
		}
	}
	// Spot-check the metric report content: high-exp before mean exceeds
	// after mean for mapping distance.
	before, after := positionalMeans(rf.Fig13MappingDistance())
	if before <= after {
		t.Errorf("fig13 high-exp before mean %.1f <= after %.1f", before, after)
	}
}

// positionalMeans extracts the high-exp before/after means from a metric
// report (rows 0 and 1, column 1).
func positionalMeans(rep *Report) (before, after float64) {
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0
		}
		return v
	}
	return parse(rep.Rows[0][1]), parse(rep.Rows[1][1])
}

func TestBaselineMechanisms(t *testing.T) {
	rows, rep := BaselineMechanisms(lab)
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 4 mechanisms x 2 sizes", len(rows))
	}
	byKey := map[string]BaselineRow{}
	for _, r := range rows {
		byKey[r.Mechanism.String()+"/"+strconv.Itoa(r.SizeBytes)] = r
	}
	small, large := "100000", "50000000"
	// ECS has the best startup at both sizes.
	for _, size := range []string{small, large} {
		ecs := byKey["ecs/"+size]
		for _, m := range []string{"ns-only", "metafile", "http-redirect"} {
			if ecs.MeanStartupMs > byKey[m+"/"+size].MeanStartupMs+1e-9 {
				t.Errorf("size %s: ecs startup %.1f worse than %s %.1f",
					size, ecs.MeanStartupMs, m, byKey[m+"/"+size].MeanStartupMs)
			}
		}
	}
	// For the small page, redirection's total is worse relative to ECS
	// than for the big download (§7: penalty acceptable only for larger
	// downloads).
	smallPenalty := byKey["http-redirect/"+small].MeanTotalMs / byKey["ecs/"+small].MeanTotalMs
	largePenalty := byKey["http-redirect/"+large].MeanTotalMs / byKey["ecs/"+large].MeanTotalMs
	if largePenalty >= smallPenalty {
		t.Errorf("redirect penalty should shrink with size: %.3f -> %.3f", smallPenalty, largePenalty)
	}
	// For the large download, redirection beats NS-only on average.
	if byKey["http-redirect/"+large].MeanTotalMs >= byKey["ns-only/"+large].MeanTotalMs {
		t.Error("redirect should beat NS-only for large downloads")
	}
	if len(rep.Rows) != 8 {
		t.Error("report rows mismatch")
	}
}

func TestFlashCrowd(t *testing.T) {
	rows, rep, err := FlashCrowd(lab, "DE")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Under light load nothing spills; under heavy load spill and
	// distances grow, but every request is still served.
	if rows[0].SpillFraction > 0.05 {
		t.Errorf("light load spilled %.1f%%", 100*rows[0].SpillFraction)
	}
	last := rows[len(rows)-1]
	if last.SpillFraction <= rows[0].SpillFraction {
		t.Errorf("spill did not grow with load: %.3f -> %.3f",
			rows[0].SpillFraction, last.SpillFraction)
	}
	if last.SpillFraction < 0.2 {
		t.Errorf("4x overload spilled only %.1f%%", 100*last.SpillFraction)
	}
	if last.MeanDistance <= rows[0].MeanDistance {
		t.Error("mean distance did not grow under overload")
	}
	if len(rep.Rows) != 5 {
		t.Error("report rows mismatch")
	}
	if _, _, err := FlashCrowd(lab, "XX"); err == nil {
		t.Error("unknown country accepted")
	}
}

func TestPathStability(t *testing.T) {
	rows, rep := PathStability(lab)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	ns, eu := rows[0], rows[1]
	if ns.Policy != mapping.NSBased || eu.Policy != mapping.EndUser {
		t.Fatal("row order wrong")
	}
	// §4.4: EU paths cross fewer AS boundaries and see less loss.
	if eu.MeanASCrossings >= ns.MeanASCrossings {
		t.Errorf("EU crossings %.2f not below NS %.2f", eu.MeanASCrossings, ns.MeanASCrossings)
	}
	if eu.MeanLossPct >= ns.MeanLossPct {
		t.Errorf("EU loss %.3f%% not below NS %.3f%%", eu.MeanLossPct, ns.MeanLossPct)
	}
	if eu.MeanRTTMs >= ns.MeanRTTMs {
		t.Errorf("EU RTT %.1f not below NS %.1f", eu.MeanRTTMs, ns.MeanRTTMs)
	}
	if len(rep.Rows) != 2 {
		t.Error("report rows mismatch")
	}
}

func TestMeasurementFreshness(t *testing.T) {
	rows, rep := MeasurementFreshness(lab, Small)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	daily, monthly := rows[0], rows[len(rows)-1]
	if daily.SweepEveryDays != 1 {
		t.Fatal("row order wrong")
	}
	// Fresher measurements -> better realized latency, at more probes.
	if daily.MeanRealizedMs >= monthly.MeanRealizedMs {
		t.Errorf("daily sweeps (%.1f ms) should beat monthly (%.1f ms)",
			daily.MeanRealizedMs, monthly.MeanRealizedMs)
	}
	if daily.Probes <= monthly.Probes {
		t.Errorf("daily sweeps should cost more probes: %d vs %d", daily.Probes, monthly.Probes)
	}
	if len(rep.Rows) != 3 {
		t.Error("report rows mismatch")
	}
}

func TestGeoErrorImpact(t *testing.T) {
	rows, rep := GeoErrorImpact(lab)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	clean := rows[0]
	worst := rows[len(rows)-1]
	// Error degrades mapping quality monotonically-ish: the worst level
	// must be clearly worse than clean, and mild error only mildly so.
	if worst.MeanRTTMs <= clean.MeanRTTMs {
		t.Errorf("30%%/1000mi error did not degrade RTT: %.1f vs %.1f",
			worst.MeanRTTMs, clean.MeanRTTMs)
	}
	mild := rows[1] // 10% / 250 mi
	if mild.MeanRTTMs > clean.MeanRTTMs*1.5 {
		t.Errorf("mild geo error blew up RTT: %.1f vs %.1f", mild.MeanRTTMs, clean.MeanRTTMs)
	}
	if len(rep.Rows) != 4 {
		t.Error("report rows mismatch")
	}
}

func TestOverlayBenefit(t *testing.T) {
	rows, rep, err := OverlayBenefit(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RelayedPct <= 0 {
			t.Errorf("epoch %d: no relayed pairs", r.Epoch)
		}
		if r.RelayedImprovementPct <= 0 || r.RelayedImprovementPct >= 90 {
			t.Errorf("epoch %d: relayed improvement %.1f%% implausible", r.Epoch, r.RelayedImprovementPct)
		}
	}
	if len(rep.Rows) != 3 {
		t.Error("report rows mismatch")
	}
}

func TestTrafficClassesExperiment(t *testing.T) {
	rows, rep := TrafficClasses(lab)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	web, video, app := rows[0], rows[1], rows[2]
	if web.MeanPingMs > video.MeanPingMs || web.MeanPingMs > app.MeanPingMs {
		t.Errorf("web should minimise ping: %.2f vs %.2f / %.2f",
			web.MeanPingMs, video.MeanPingMs, app.MeanPingMs)
	}
	if video.MeanThroughput < web.MeanThroughput {
		t.Errorf("video throughput %.1f below web %.1f", video.MeanThroughput, web.MeanThroughput)
	}
	if app.MeanLossPct > web.MeanLossPct {
		t.Errorf("application loss %.4f above web %.4f", app.MeanLossPct, web.MeanLossPct)
	}
	if len(rep.Rows) != 3 {
		t.Error("report rows mismatch")
	}
}
