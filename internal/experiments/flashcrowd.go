package experiments

import (
	"fmt"

	"eum/internal/geo"
	"eum/internal/mapping"
	"eum/internal/stats"
	"eum/internal/world"
)

// FlashCrowdRow is one load level of the flash-crowd experiment.
type FlashCrowdRow struct {
	// LoadMultiple scales the regional demand surge relative to the
	// local deployments' capacity.
	LoadMultiple float64
	// SpillFraction is the fraction of the surge served from outside the
	// surging country — true regional overflow.
	SpillFraction float64
	// MeanDistance and P95Distance are client-to-assigned-server miles.
	MeanDistance float64
	P95Distance  float64
}

// FlashCrowd exercises the global load balancer the way a regional event
// does (the paper's mapping system "combines [scores] with liveness,
// capacity, and other real-time information"): demand for one domain
// surges in one country, local clusters saturate, and the balancer must
// spill to farther deployments — trading mapping distance for availability.
// Rows sweep the surge intensity; the spill fraction and distance
// percentiles grow with it while every request keeps being served.
func FlashCrowd(lab *Lab, country string) ([]FlashCrowdRow, *Report, error) {
	var target *world.Country
	for _, c := range lab.World.Countries {
		if c.Code() == country {
			target = c
		}
	}
	if target == nil {
		return nil, nil, fmt.Errorf("experiments: unknown country %q", country)
	}

	var rows []FlashCrowdRow
	rep := &Report{
		ID:      "flashcrowd",
		Caption: fmt.Sprintf("Flash crowd in %s: load balancing under a regional surge", country),
		Columns: []string{"load-multiple", "spill-pct", "mean-dist-mi", "p95-dist-mi"},
	}

	// Local capacity available to the surge.
	var localCap float64
	for _, d := range lab.Platform.Deployments {
		if d.Country == country {
			localCap += d.Capacity()
		}
	}
	if localCap == 0 {
		return nil, nil, fmt.Errorf("experiments: no deployments in %q", country)
	}

	for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
		lab.Platform.ResetLoad()
		sys := mapping.NewSystem(lab.World, lab.Platform, lab.Net,
			mapping.Config{Policy: mapping.EndUser, PingTargets: 800})

		// The surge: total regional demand = mult x local capacity,
		// spread over the country's blocks proportionally to demand.
		var regionDemand float64
		for _, b := range target.Blocks {
			regionDemand += b.Demand
		}
		scale := mult * localCap / regionDemand

		var dist stats.Dataset
		spilled, total := 0.0, 0.0
		for _, b := range target.Blocks {
			r, err := sys.Map(mapping.Request{
				Domain: "viral.net", LDNS: b.LDNS.Addr, ClientSubnet: b.Prefix,
				Demand: b.Demand * scale,
			})
			if err != nil {
				return nil, nil, err
			}
			total += b.Demand
			if r.Deployment.Country != country {
				spilled += b.Demand
			}
			dist.Add(geo.Distance(b.Loc, r.Deployment.Loc), b.Demand)
		}
		row1 := FlashCrowdRow{
			LoadMultiple:  mult,
			SpillFraction: spilled / total,
			MeanDistance:  dist.Mean(),
			P95Distance:   dist.Percentile(95),
		}
		rows = append(rows, row1)
		rep.Rows = append(rep.Rows, row(mult, 100*row1.SpillFraction, row1.MeanDistance, row1.P95Distance))
	}
	lab.Platform.ResetLoad()
	return rows, rep, nil
}
