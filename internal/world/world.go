// Package world generates a synthetic but structurally realistic model of
// the global Internet's client and name-server population: countries,
// autonomous systems, /24 client IP blocks with demand, ISP-operated local
// DNS servers (LDNS), and anycast public resolver providers.
//
// It substitutes for the paper's NetSession-derived dataset of 3.76 million
// /24 client blocks and 584 thousand LDNSes across 238 countries. The
// generator is seeded and deterministic, and is parameterised per country
// (see Countries) so that the joint distribution of client demand, client
// location, LDNS location and public-resolver adoption reproduces the
// qualitative structure of the paper's §3 measurement analysis.
package world

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"

	"eum/internal/geo"
	"eum/internal/netmodel"
	"eum/internal/par"
)

// Config parameterises world generation. The zero value is not useful;
// use DefaultConfig.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// NumBlocks is the approximate total number of /24 client blocks.
	NumBlocks int
	// Providers are the public resolver providers; nil means
	// DefaultProviders.
	Providers []ProviderSpec
	// IPv6Fraction is the fraction of client blocks numbered from IPv6
	// space (/48 blocks) instead of IPv4 /24s. Zero disables IPv6.
	IPv6Fraction float64
}

// DefaultConfig returns a laptop-scale world: 20k client blocks standing in
// for the paper's 3.76M, preserving relative per-country proportions.
func DefaultConfig() Config {
	return Config{Seed: 1, NumBlocks: 20000}
}

// LDNSKind classifies where an LDNS sits relative to its clients.
type LDNSKind uint8

// LDNS placement kinds.
const (
	KindISPMetro    LDNSKind = iota // in the client's metro area
	KindISPRegional                 // at a regional hub city
	KindISPNational                 // at the country's primary hub
	KindISPOffshore                 // outside the country (enterprise/outsourced)
	KindPublic                      // public resolver provider site
)

// String returns the kind name.
func (k LDNSKind) String() string {
	switch k {
	case KindISPMetro:
		return "isp-metro"
	case KindISPRegional:
		return "isp-regional"
	case KindISPNational:
		return "isp-national"
	case KindISPOffshore:
		return "isp-offshore"
	case KindPublic:
		return "public"
	}
	return "unknown"
}

// LDNS is a recursive resolver as seen by the CDN's authoritative servers.
// For public providers each anycast site is a distinct LDNS, since sites
// contact authoritative servers from their own unicast addresses (§3.2).
type LDNS struct {
	ID          uint64
	Addr        netip.Addr
	Loc         geo.Point
	Kind        LDNSKind
	ASN         uint32 // owning network
	Provider    string // public provider name; empty for ISP resolvers
	Site        string // public provider site name
	SupportsECS bool   // forwards EDNS0 client-subnet (per provider policy)

	// ECSPrefixV4 / ECSPrefixV6 are the source prefix lengths this
	// resolver reveals when it forwards client-subnet information, from
	// its provider's ECS policy (full /24, privacy-truncated /20, ...).
	// Zero means the resolver attaches no ECS (SupportsECS false), or —
	// for ISP resolvers in universal-adoption what-ifs — the simulation's
	// conventional default.
	ECSPrefixV4 uint8
	ECSPrefixV6 uint8

	// Demand is the total demand of client blocks using this LDNS,
	// filled in after block assignment.
	Demand float64
	// Blocks lists the client blocks using this LDNS (its client cluster).
	Blocks []*ClientBlock
}

// Endpoint returns the LDNS as a network-model endpoint.
func (l *LDNS) Endpoint() netmodel.Endpoint {
	return netmodel.Endpoint{ID: l.ID, Loc: l.Loc, ASN: l.ASN, Access: netmodel.AccessBackbone}
}

// IsPublic reports whether the LDNS belongs to a public resolver provider.
func (l *LDNS) IsPublic() bool { return l.Kind == KindPublic }

// AS is an autonomous system originating client demand.
type AS struct {
	ASN     uint32
	Country *Country
	// Demand is the AS's share of total global demand.
	Demand float64
	Blocks []*ClientBlock
	// CIDRs are the AS's BGP announcements covering its /24 blocks.
	CIDRs []netip.Prefix
	// Large marks the country's major ISPs, which run their own
	// distributed LDNS infrastructure; small ASes are more likely to
	// outsource DNS (paper §3.2, Fig 10).
	Large bool

	ldns map[string]*LDNS // lazily created ISP LDNS per placement key
}

// Country is a generated country with its blocks and ASes.
type Country struct {
	Spec   CountrySpec
	Demand float64 // normalised share of global demand
	ASes   []*AS
	Blocks []*ClientBlock
}

// Code returns the ISO-style country code.
func (c *Country) Code() string { return c.Spec.Code }

// ClientBlock is a /24 block of client IPs — the finest-grained mapping
// unit of end-user mapping — with its demand and its chosen LDNS.
type ClientBlock struct {
	ID      uint64
	Prefix  netip.Prefix // a /24
	Loc     geo.Point
	Country *Country
	AS      *AS
	City    string
	Access  netmodel.AccessType
	// Demand is the block's share of total global demand.
	Demand float64
	// LDNS is the resolver this block's clients use.
	LDNS *LDNS
}

// Endpoint returns the block as a network-model endpoint.
func (b *ClientBlock) Endpoint() netmodel.Endpoint {
	return netmodel.Endpoint{ID: b.ID, Loc: b.Loc, ASN: b.AS.ASN, Access: b.Access}
}

// ClientLDNSDistance returns the great-circle distance in miles between the
// block and its LDNS.
func (b *ClientBlock) ClientLDNSDistance() float64 {
	return geo.Distance(b.Loc, b.LDNS.Loc)
}

// World is a fully generated synthetic Internet.
type World struct {
	Config    Config
	Countries []*Country
	ASes      []*AS
	Blocks    []*ClientBlock
	LDNSes    []*LDNS
	Providers []ProviderSpec

	publicSites map[string][]*LDNS // provider -> site LDNSes
	nextID      uint64
	nextASN     uint32
	nextV6      uint64 // next /48 network number (first 48 bits)
}

// Generate builds a world from the configuration. Generation is
// deterministic in cfg.Seed, and bit-identical regardless of the par
// worker count: each country is generated on its own worker from a child
// seed (par.ChildSeed(cfg.Seed, countryIndex)) with country-local
// identifier, ASN and address counters, and the results are renumbered
// into the global namespaces serially in country order.
func Generate(cfg Config) (*World, error) {
	if cfg.NumBlocks <= 0 {
		return nil, fmt.Errorf("world: NumBlocks must be positive, got %d", cfg.NumBlocks)
	}
	if cfg.Providers == nil {
		cfg.Providers = DefaultProviders()
	}
	w := &World{
		Config: cfg, Providers: cfg.Providers,
		publicSites: map[string][]*LDNS{},
		nextV6:      0x260000000000, // 2600::/24-style synthetic space
	}

	w.createPublicResolverSites()

	var totalShare float64
	for _, cs := range Countries {
		totalShare += cs.DemandShare
	}

	gens := par.Map(len(Countries), func(i int) *countryGen {
		cs := Countries[i]
		c := &Country{Spec: cs, Demand: cs.DemandShare / totalShare}
		nBlocks := int(math.Round(c.Demand * float64(cfg.NumBlocks)))
		if nBlocks < 8 {
			nBlocks = 8
		}
		g := &countryGen{
			cfg:         cfg,
			providers:   w.Providers,
			publicSites: w.publicSites,
			c:           c,
			rng:         rand.New(rand.NewSource(par.ChildSeed(cfg.Seed, uint64(i)))),
		}
		g.generate(nBlocks)
		return g
	})

	var ipBase uint32 = 0x01000000 // 1.0.0.0
	for _, g := range gens {
		w.adopt(g, &ipBase)
	}

	// BGP aggregation reads the final (renumbered) prefixes; each AS is
	// independent.
	par.ForEach(len(w.ASes), func(i int) {
		as := w.ASes[i]
		as.CIDRs = aggregateCIDRs(as.Blocks)
	})

	w.normaliseDemand()
	w.fillLDNSClusters()
	return w, nil
}

// adopt renumbers one country's locally-generated entities into the global
// namespaces and appends them to the world. It must run serially, in
// country order: the global offsets it hands out are what keep IDs, ASNs
// and addresses unique and deterministic.
func (w *World) adopt(g *countryGen, ipBase *uint32) {
	idBase := w.nextID
	w.nextID += g.nextID
	asnBase := w.nextASN
	w.nextASN += g.nextASN

	// Keep the country's IPv4 allocation on a /20 boundary. Local
	// addressing started at 0 on the same alignment, so every run and
	// boundary decision the worker made is preserved by the shift.
	if *ipBase%(16*256) != 0 {
		*ipBase += 16*256 - *ipBase%(16*256)
	}
	ipOff := *ipBase
	*ipBase += g.ipBase
	v6Off := w.nextV6
	w.nextV6 += g.nextV6

	for _, as := range g.c.ASes {
		as.ASN += asnBase
		w.ASes = append(w.ASes, as)
	}
	for _, b := range g.c.Blocks {
		b.ID += idBase
		if b.Prefix.Addr().Is4() {
			a := b.Prefix.Addr().As4()
			local := uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8
			b.Prefix = netip.PrefixFrom(ipFromUint32(local+ipOff), 24)
		} else {
			b.Prefix = netip.PrefixFrom(ipFromV6Net(v6NetOf(b.Prefix.Addr())+v6Off), 48)
		}
		w.Blocks = append(w.Blocks, b)
	}
	for _, l := range g.ldnses {
		l.ID += idBase
		l.ASN += asnBase
		l.Addr = ipFromUint32(0xB4000000 + uint32(len(w.LDNSes))) // 180.0.0.0+
		w.LDNSes = append(w.LDNSes, l)
	}
	w.Countries = append(w.Countries, g.c)
}

// MustGenerate is Generate that panics on error, for tests and examples.
func MustGenerate(cfg Config) *World {
	w, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

func (w *World) id() uint64 {
	w.nextID++
	return w.nextID
}

// createPublicResolverSites materialises one LDNS per provider site.
func (w *World) createPublicResolverSites() {
	var siteIP uint32 = 0xD0000000 // 208.0.0.0
	for _, p := range w.Providers {
		v4, v6 := p.ECSPrefixes()
		for _, s := range p.Sites {
			l := &LDNS{
				ID:          w.id(),
				Addr:        ipFromUint32(siteIP),
				Loc:         s.Loc,
				Kind:        KindPublic,
				ASN:         64512, // shared provider ASN space
				Provider:    p.Name,
				Site:        s.Name,
				SupportsECS: v4 > 0 || v6 > 0,
				ECSPrefixV4: v4,
				ECSPrefixV6: v6,
			}
			siteIP += 256
			w.LDNSes = append(w.LDNSes, l)
			w.publicSites[p.Name] = append(w.publicSites[p.Name], l)
		}
	}
}

// countryGen generates one country in isolation so countries can run on
// parallel workers. All identifiers are country-local — IDs and ASNs count
// from zero, IPv4 addresses from 0.0.0.0 (on the same /20 alignment as the
// global space), IPv6 /48s from network 0 — and (*World).adopt later shifts
// them into the global namespaces. Only read-only world state is shared:
// the config, the provider specs and the public resolver sites.
type countryGen struct {
	cfg         Config
	providers   []ProviderSpec
	publicSites map[string][]*LDNS

	c    *Country
	rng  *rand.Rand
	hubs []CitySpec // the country's hub cities (BGP exit candidates)

	nextID  uint64
	nextASN uint32
	ipBase  uint32  // local IPv4 offset; starts at 0, /20-aligned
	nextV6  uint64  // local /48 count
	ldnses  []*LDNS // ISP LDNSes in creation order
}

func (g *countryGen) id() uint64 {
	g.nextID++
	return g.nextID
}

func (g *countryGen) generate(nBlocks int) {
	c, rng := g.c, g.rng
	// --- Autonomous systems: Zipf-sized, top ~20% are "large" ISPs. ---
	nAS := nBlocks / 50
	if nAS < 4 {
		nAS = 4
	}
	weights := make([]float64, nAS)
	var wSum float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), 1.1)
		wSum += weights[i]
	}
	for i := 0; i < nAS; i++ {
		g.nextASN++
		as := &AS{
			ASN:     g.nextASN,
			Country: c,
			Large:   i < (nAS+4)/5,
			ldns:    map[string]*LDNS{},
		}
		c.ASes = append(c.ASes, as)
	}

	// Per-AS public resolver adoption: small ASes outsource more, large
	// ISPs run their own DNS. Scale so the demand-weighted country mean
	// matches the spec's adoption target.
	adopt := make([]float64, nAS)
	var weightedAdopt float64
	for i := range adopt {
		boost := 1.0
		switch {
		case i < nAS/4:
			boost = 0.55
		case i >= nAS*3/4:
			boost = 2.8
		case i >= nAS/2:
			boost = 1.6
		}
		adopt[i] = c.Spec.PublicAdoption * boost
		weightedAdopt += adopt[i] * weights[i] / wSum
	}
	if weightedAdopt > 0 {
		scale := c.Spec.PublicAdoption / weightedAdopt
		for i := range adopt {
			adopt[i] = math.Min(adopt[i]*scale, 0.95)
		}
	}

	// --- City sampling tables. ---
	cities := c.Spec.Cities
	var cityWeightSum float64
	for _, ci := range cities {
		cityWeightSum += ci.Weight
	}
	var hubs []CitySpec
	for _, ci := range cities {
		if ci.Hub {
			hubs = append(hubs, ci)
		}
	}
	if len(hubs) == 0 {
		hubs = cities[:1]
	}
	g.hubs = hubs

	// --- Blocks: multinomial over ASes, then per-block attributes.
	// Each AS gets a contiguous run of /24s so BGP CIDR aggregation
	// (§5.1) has real structure to exploit.
	perAS := make([]int, nAS)
	for b := 0; b < nBlocks; b++ {
		perAS[pickWeighted(rng, weights, wSum)]++
	}
	for asIdx, count := range perAS {
		as := c.ASes[asIdx]
		// Align the AS's allocation to a /20 boundary so aggregates can
		// form (real registries allocate aligned ranges).
		if count > 1 && g.ipBase%(16*256) != 0 {
			g.ipBase += 16*256 - g.ipBase%(16*256)
		}
		// Choose each block's city up front and group the allocation by
		// city: ISPs number regions out of contiguous ranges, so /24s
		// adjacent in IP space are usually adjacent geographically —
		// which is what makes coarser /x mapping units compact (Fig 22).
		cityOf := make([]int, count)
		for k := range cityOf {
			cityOf[k] = pickCity(rng, cities, cityWeightSum)
		}
		sort.Ints(cityOf)
		for k := 0; k < count; k++ {
			ci := cityOf[k]
			// Start each regional (per-city) range on a /20 boundary, as
			// registries hand ISPs aligned per-region allocations.
			if k > 0 && cityOf[k] != cityOf[k-1] && g.ipBase%(16*256) != 0 {
				g.ipBase += 16*256 - g.ipBase%(16*256)
			}
			loc := scatter(rng, cities[ci].Loc, 18, 60)

			var prefix netip.Prefix
			if g.cfg.IPv6Fraction > 0 && rng.Float64() < g.cfg.IPv6Fraction {
				// An IPv6 /48 client block (local network number; adopt
				// shifts it into the global 2600::-style space).
				prefix = netip.PrefixFrom(ipFromV6Net(g.nextV6), 48)
				g.nextV6++
			} else {
				prefix = netip.PrefixFrom(ipFromUint32(g.ipBase), 24)
				g.ipBase += 256
			}

			blk := &ClientBlock{
				ID:      g.id(),
				Prefix:  prefix,
				Loc:     loc,
				Country: c,
				AS:      as,
				City:    cities[ci].Name,
				Access:  pickAccess(rng, c.Spec.InfraTier),
				Demand:  samplePareto(rng, 1.5),
			}

			// Resolver choice: public with the AS's adoption
			// probability, otherwise the ISP LDNS per the country
			// placement profile.
			if rng.Float64() < adopt[asIdx] {
				blk.LDNS = g.pickPublicResolver(blk)
			} else {
				blk.LDNS = g.ispLDNS(blk, hubs)
			}

			as.Blocks = append(as.Blocks, blk)
			c.Blocks = append(c.Blocks, blk)
		}
	}

	// --- Per-AS demand. (BGP CIDR aggregation waits for the final
	// renumbered prefixes; see Generate.) ---
	for _, as := range c.ASes {
		for _, blk := range as.Blocks {
			as.Demand += blk.Demand
		}
	}
}

// ispLDNS returns (creating on first use) the ISP LDNS serving blk, placed
// per the country's LDNS profile. Small ASes skew away from metro
// placement: they centralise or offshore their DNS (paper Fig 10).
func (g *countryGen) ispLDNS(blk *ClientBlock, hubs []CitySpec) *LDNS {
	rng := g.rng
	c := blk.Country
	p := c.Spec.Profile
	if !blk.AS.Large {
		shift := p.Metro * 0.5
		p.Metro -= shift
		p.National += shift * 0.6
		p.Offshore += shift * 0.4
	}
	u := rng.Float64() * (p.Metro + p.Regional + p.National + p.Offshore)

	var kind LDNSKind
	var loc geo.Point
	var key string
	switch {
	case u < p.Metro:
		kind = KindISPMetro
		loc = cityCentre(c.Spec.Cities, blk.City)
		key = "m/" + blk.City
	case u < p.Metro+p.Regional:
		kind = KindISPRegional
		hub := nearestHub(hubs, blk.Loc)
		loc = hub.Loc
		key = "r/" + hub.Name
	case u < p.Metro+p.Regional+p.National:
		kind = KindISPNational
		loc = c.Spec.Cities[0].Loc
		key = "n"
	default:
		kind = KindISPOffshore
		loc = c.Spec.OffshoreHub
		key = "o"
	}
	if l, ok := blk.AS.ldns[key]; ok {
		return l
	}
	l := &LDNS{
		ID: g.id(),
		// Addr is assigned from the global 180.0.0.0+ pool when the
		// country is adopted; until then it is a local placeholder.
		Addr: ipFromUint32(uint32(len(g.ldnses))),
		Loc:  scatter(rng, loc, 3, 10),
		Kind: kind,
		ASN:  blk.AS.ASN,
		// ISP resolvers do not forward client-subnet information; the
		// paper's roll-out targets public resolvers precisely because
		// they are the ones supporting ECS (§4).
		SupportsECS: false,
	}
	blk.AS.ldns[key] = l
	g.ldnses = append(g.ldnses, l)
	return l
}

// pickPublicResolver anycast-routes blk to a provider site. The provider
// is drawn by demand share; the site comes from the provider's anycast
// catchment for the block's origin AS (see catchmentSite) — IP anycast
// follows BGP, not geography, so whole networks land at one site rather
// than each block independently picking its nearest.
func (g *countryGen) pickPublicResolver(blk *ClientBlock) *LDNS {
	return g.catchmentSite(blk, pickProviderIndex(g.rng.Float64(), g.providers))
}

// pickProviderIndex resolves a uniform draw u in [0,1) to a provider by
// accumulated share. The last provider absorbs any remainder (shares that
// sum below 1, or a draw landing past the accumulated total). Termination
// is index-based on purpose: a name-equality check against the final
// provider would short-circuit the accumulation whenever provider names
// repeat (or are empty), silently mis-selecting. Returns -1 only for an
// empty provider list.
func pickProviderIndex(u float64, providers []ProviderSpec) int {
	var acc float64
	for i, p := range providers {
		acc += p.Share
		if u <= acc || i == len(providers)-1 {
			return i
		}
	}
	return -1
}

// catchmentCellDeg quantizes BGP exit geography into ~6-degree cells
// (roughly 400 miles at mid latitudes): path selection toward an anycast
// prefix depends on where traffic exits the origin network, not on the
// client's street address, so every client exiting in one cell shares a
// catchment.
const catchmentCellDeg = 6.0

// quantizeCell snaps a point to the centre of its catchment cell.
func quantizeCell(p geo.Point) geo.Point {
	return geo.Point{
		Lat: (math.Floor(p.Lat/catchmentCellDeg) + 0.5) * catchmentCellDeg,
		Lon: (math.Floor(p.Lon/catchmentCellDeg) + 0.5) * catchmentCellDeg,
	}
}

// catchmentSite routes blk to one of the provider's anycast sites via a
// quantized BGP-path model. The origin AS's preferred exit region decides
// the site: large ISPs peer regionally and hot-potato out of the hub
// nearest the client's region, while small ASes single-home behind one
// transit exit hash-chosen per (AS, provider) — so an entire small AS
// lands at one site, and a large ISP lands whole regions at a time. A
// per-(AS, provider, exit-cell) hash draw misroutes some networks to the
// 2nd/3rd-nearest site with the provider's MisrouteProb, reproducing the
// systematically unlucky origin networks of §3.2 as wide catchments
// rather than per-block noise.
func (g *countryGen) catchmentSite(blk *ClientBlock, provIdx int) *LDNS {
	spec := g.providers[provIdx]
	sites := g.publicSites[spec.Name]
	as := blk.AS

	var exitHub CitySpec
	if as.Large {
		exitHub = nearestHub(g.hubs, blk.Loc)
	} else {
		h := catchHash(g.cfg.Seed, g.c.Spec.Code, as.ASN, spec.Name, 0, 0)
		exitHub = g.hubs[int(h%uint64(len(g.hubs)))]
	}
	exit := quantizeCell(exitHub.Loc)

	// Rank sites by distance from the exit cell (ties break on site ID so
	// the order is total), then pick per the exit cell's path preference.
	order := make([]int, len(sites))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		di := geo.Distance(sites[order[i]].Loc, exit)
		dj := geo.Distance(sites[order[j]].Loc, exit)
		if di != dj {
			return di < dj
		}
		return sites[order[i]].ID < sites[order[j]].ID
	})
	idx := 0
	if len(sites) > 1 && spec.MisrouteProb > 0 {
		cellLat := int64(math.Floor(exit.Lat / catchmentCellDeg))
		cellLon := int64(math.Floor(exit.Lon / catchmentCellDeg))
		h := catchHash(g.cfg.Seed, g.c.Spec.Code, as.ASN, spec.Name, cellLat, cellLon)
		if float64(h>>11)/(1<<53) < spec.MisrouteProb {
			idx = 1 + int(splitmix64(h)%uint64(min(2, len(sites)-1)))
		}
	}
	return sites[order[idx]]
}

// catchHash derives a deterministic 64-bit value for a (seed, country,
// AS, provider, exit-cell) tuple: FNV-1a over the tuple bytes, finished
// with a splitmix64 avalanche. Catchment decisions hash instead of
// consuming the generation rng so they are a stable function of the
// network's identity, independent of block generation order.
func catchHash(seed int64, country string, asn uint32, provider string, cellLat, cellLon int64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(seed))
	for i := 0; i < len(country); i++ {
		h ^= uint64(country[i])
		h *= prime64
	}
	mix(uint64(asn))
	for i := 0; i < len(provider); i++ {
		h ^= uint64(provider[i])
		h *= prime64
	}
	mix(uint64(cellLat))
	mix(uint64(cellLon))
	return splitmix64(h)
}

// splitmix64 finishes a hash with strong avalanche behaviour.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// normaliseDemand rescales block demand so each country's total equals its
// share of a global total of 1.
func (w *World) normaliseDemand() {
	for _, c := range w.Countries {
		var sum float64
		for _, b := range c.Blocks {
			sum += b.Demand
		}
		if sum == 0 {
			continue
		}
		scale := c.Demand / sum
		for _, b := range c.Blocks {
			b.Demand *= scale
		}
	}
	for _, as := range w.ASes {
		as.Demand = 0
		for _, b := range as.Blocks {
			as.Demand += b.Demand
		}
	}
}

// fillLDNSClusters populates each LDNS's demand and client-cluster block
// list.
func (w *World) fillLDNSClusters() {
	for _, b := range w.Blocks {
		b.LDNS.Demand += b.Demand
		b.LDNS.Blocks = append(b.LDNS.Blocks, b)
	}
}

// TotalDemand returns the summed demand of all blocks (≈1 by construction).
func (w *World) TotalDemand() float64 {
	var sum float64
	for _, b := range w.Blocks {
		sum += b.Demand
	}
	return sum
}

// PublicDemandFraction returns the fraction of global demand whose clients
// use public resolvers.
func (w *World) PublicDemandFraction() float64 {
	var pub, total float64
	for _, b := range w.Blocks {
		total += b.Demand
		if b.LDNS.IsPublic() {
			pub += b.Demand
		}
	}
	if total == 0 {
		return 0
	}
	return pub / total
}

// BGPCIDRs returns every AS's announced prefixes — the BGP routing table
// used to aggregate mapping units (§5.1).
func (w *World) BGPCIDRs() []netip.Prefix {
	var out []netip.Prefix
	for _, as := range w.ASes {
		out = append(out, as.CIDRs...)
	}
	return out
}

// BlockByPrefix returns the client block owning the given /24, or nil.
func (w *World) BlockByPrefix(p netip.Prefix) *ClientBlock {
	for _, b := range w.Blocks {
		if b.Prefix == p {
			return b
		}
	}
	return nil
}

// --- generation helpers ---

func pickWeighted(rng *rand.Rand, weights []float64, sum float64) int {
	u := rng.Float64() * sum
	var acc float64
	for i, w := range weights {
		acc += w
		if u <= acc {
			return i
		}
	}
	return len(weights) - 1
}

func pickCity(rng *rand.Rand, cities []CitySpec, sum float64) int {
	u := rng.Float64() * sum
	var acc float64
	for i, c := range cities {
		acc += c.Weight
		if u <= acc {
			return i
		}
	}
	return len(cities) - 1
}

// scatter displaces p by an exponentially distributed distance (mean
// meanMiles, capped at capMiles) in a uniform direction.
func scatter(rng *rand.Rand, p geo.Point, meanMiles, capMiles float64) geo.Point {
	d := rng.ExpFloat64() * meanMiles
	if d > capMiles {
		d = capMiles
	}
	return geo.Offset(p, rng.Float64()*360, d)
}

// samplePareto draws from a Pareto distribution with the given shape and
// unit scale, capped so no single block dominates a country: the
// heavy-tailed per-block demand behind Fig 21 (the top ~11% of /24 blocks
// carry half the global demand).
func samplePareto(rng *rand.Rand, shape float64) float64 {
	u := rng.Float64()
	if u >= 1 {
		u = 1 - 1e-12
	}
	v := math.Pow(1-u, -1/shape)
	if v > 100 {
		v = 100
	}
	return v
}

// cityCentre returns the location of the named city.
func cityCentre(cities []CitySpec, name string) geo.Point {
	for _, c := range cities {
		if c.Name == name {
			return c.Loc
		}
	}
	return cities[0].Loc
}

// accessMix[tier-1] gives cumulative probabilities over access types.
var accessMix = [3][]struct {
	t netmodel.AccessType
	p float64
}{
	{{netmodel.AccessFiber, 0.40}, {netmodel.AccessCable, 0.30}, {netmodel.AccessDSL, 0.10}, {netmodel.AccessWiFi, 0.08}, {netmodel.Access4G, 0.10}, {netmodel.AccessCellular, 0.02}},
	{{netmodel.AccessFiber, 0.15}, {netmodel.AccessCable, 0.30}, {netmodel.AccessDSL, 0.25}, {netmodel.AccessWiFi, 0.10}, {netmodel.Access4G, 0.15}, {netmodel.AccessCellular, 0.05}},
	{{netmodel.AccessFiber, 0.05}, {netmodel.AccessCable, 0.12}, {netmodel.AccessDSL, 0.20}, {netmodel.AccessWiFi, 0.10}, {netmodel.Access4G, 0.30}, {netmodel.Access3G, 0.15}, {netmodel.AccessCellular, 0.08}},
}

func pickAccess(rng *rand.Rand, tier int) netmodel.AccessType {
	if tier < 1 {
		tier = 1
	}
	if tier > 3 {
		tier = 3
	}
	mix := accessMix[tier-1]
	u := rng.Float64()
	var acc float64
	for _, m := range mix {
		acc += m.p
		if u <= acc {
			return m.t
		}
	}
	return mix[len(mix)-1].t
}

func nearestHub(hubs []CitySpec, p geo.Point) CitySpec {
	best := hubs[0]
	bestD := geo.Distance(best.Loc, p)
	for _, h := range hubs[1:] {
		if d := geo.Distance(h.Loc, p); d < bestD {
			best, bestD = h, d
		}
	}
	return best
}

func ipFromUint32(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// ipFromV6Net expands a 48-bit network number into the address of its /48.
func ipFromV6Net(n uint64) netip.Addr {
	var b [16]byte
	b[0] = byte(n >> 40)
	b[1] = byte(n >> 32)
	b[2] = byte(n >> 24)
	b[3] = byte(n >> 16)
	b[4] = byte(n >> 8)
	b[5] = byte(n)
	return netip.AddrFrom16(b)
}

// v6NetOf extracts the 48-bit network number of a /48 block address.
func v6NetOf(a netip.Addr) uint64 {
	b := a.As16()
	return uint64(b[0])<<40 | uint64(b[1])<<32 | uint64(b[2])<<24 |
		uint64(b[3])<<16 | uint64(b[4])<<8 | uint64(b[5])
}

// aggregateCIDRs greedily covers the AS's blocks with maximal aligned
// prefixes per family, emulating BGP announcement aggregation (§5.1:
// 3.76M /24 blocks collapse to ~517K announced CIDRs). IPv4 /24s
// aggregate up to /21; IPv6 /48s up to /45.
func aggregateCIDRs(blocks []*ClientBlock) []netip.Prefix {
	if len(blocks) == 0 {
		return nil
	}
	var nets4, nets6 []uint64
	for _, b := range blocks {
		if b.Prefix.Addr().Is4() {
			a := b.Prefix.Addr().As4()
			v := uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8
			nets4 = append(nets4, uint64(v>>8))
		} else {
			nets6 = append(nets6, v6NetOf(b.Prefix.Addr()))
		}
	}
	out := aggregateRuns(nets4, 24, func(n uint64, bits int) netip.Prefix {
		return netip.PrefixFrom(ipFromUint32(uint32(n)<<8), bits)
	})
	out = append(out, aggregateRuns(nets6, 48, func(n uint64, bits int) netip.Prefix {
		return netip.PrefixFrom(ipFromV6Net(n), bits)
	})...)
	return out
}

// aggregateRuns covers sorted network numbers (at leafBits granularity)
// with maximal aligned power-of-two aggregates of at most 8 leaves.
func aggregateRuns(nets []uint64, leafBits int, mk func(n uint64, bits int) netip.Prefix) []netip.Prefix {
	if len(nets) == 0 {
		return nil
	}
	sort.Slice(nets, func(i, j int) bool { return nets[i] < nets[j] })
	var out []netip.Prefix
	i := 0
	for i < len(nets) {
		// Length of the contiguous run starting at nets[i].
		j := i
		for j+1 < len(nets) && nets[j+1] == nets[j]+1 {
			j++
		}
		run := j - i + 1
		start := nets[i]
		// Cover [start, start+run) with maximal aligned power-of-two
		// blocks, capped at 8 leaves: real tables announce many prefixes
		// per AS, giving the paper's ~8.5:1 leaf-to-CIDR ratio.
		for run > 0 {
			size := uint64(1)
			for size*2 <= uint64(run) && size*2 <= 8 && start%(size*2) == 0 {
				size *= 2
			}
			bits := leafBits
			for s := size; s > 1; s /= 2 {
				bits--
			}
			out = append(out, mk(start, bits))
			start += size
			run -= int(size)
		}
		i = j + 1
	}
	return out
}
