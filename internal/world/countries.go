package world

import "eum/internal/geo"

// CountrySpec is the static per-country generation profile. The table below
// covers the paper's top-25 countries by client demand (Fig 6) and encodes,
// for each, the qualitative structure the paper measured:
//
//   - DemandShare: the country's share of global client demand.
//   - Cities: major population/metro centres with weights.
//   - LDNS placement profile: how ISP resolvers are sited relative to
//     clients (metro / regional hub / national hub / offshore), the knob
//     that produces the per-country client-LDNS distance distributions of
//     Fig 6 — e.g. India/Turkey/Vietnam/Mexico with >1000-mile medians
//     versus Korea/Taiwan with the smallest distances.
//   - PublicAdoption: fraction of client demand using public resolvers
//     (Fig 9) — Vietnam and Turkey heaviest, Japan and Korea lightest.
//   - InfraTier: 1 = highly developed access networks (more fibre),
//     3 = mobile-heavy.
type CountrySpec struct {
	Code        string
	Name        string
	DemandShare float64
	Cities      []CitySpec
	Profile     LDNSProfile
	// PublicAdoption is the target fraction of demand using public
	// resolvers.
	PublicAdoption float64
	// OffshoreHub is where "offshore" LDNSes for this country's
	// enterprises/outsourced ISPs sit (e.g. a US or EU data-centre hub).
	OffshoreHub geo.Point
	// InfraTier selects the access-technology mix (1 best).
	InfraTier int
}

// CitySpec is a city with a population weight used when placing client
// blocks and choosing regional LDNS hubs. The first city of each country is
// its primary hub ("national" LDNS placement); cities with Hub set also
// serve as regional LDNS hubs.
type CitySpec struct {
	Name   string
	Loc    geo.Point
	Weight float64
	Hub    bool
}

// LDNSProfile gives the probability that an ISP-operated LDNS serving a
// client block is placed in the client's metro, at a regional hub, at the
// national hub, or offshore. Fractions sum to 1.
type LDNSProfile struct {
	Metro, Regional, National, Offshore float64
}

var (
	hubFrankfurt = geo.Point{Lat: 50.11, Lon: 8.68}
	hubLondon    = geo.Point{Lat: 51.51, Lon: -0.13}
	hubAshburn   = geo.Point{Lat: 39.04, Lon: -77.49}
	hubMiami     = geo.Point{Lat: 25.76, Lon: -80.19}
	hubLosAng    = geo.Point{Lat: 34.05, Lon: -118.24}
	hubSingapore = geo.Point{Lat: 1.35, Lon: 103.82}
	hubTokyo     = geo.Point{Lat: 35.68, Lon: 139.65}
)

// Countries is the generation table for the paper's top-25 countries.
// Demand shares are approximate relative magnitudes and are normalised by
// the generator.
var Countries = []CountrySpec{
	{
		Code: "US", Name: "United States", DemandShare: 30, InfraTier: 1,
		Cities: []CitySpec{
			{"New York", geo.Point{Lat: 40.71, Lon: -74.01}, 18, true},
			{"Los Angeles", geo.Point{Lat: 34.05, Lon: -118.24}, 13, true},
			{"Chicago", geo.Point{Lat: 41.88, Lon: -87.63}, 9, true},
			{"Dallas", geo.Point{Lat: 32.78, Lon: -96.80}, 7, true},
			{"Atlanta", geo.Point{Lat: 33.75, Lon: -84.39}, 6, false},
			{"Seattle", geo.Point{Lat: 47.61, Lon: -122.33}, 5, false},
			{"Miami", geo.Point{Lat: 25.76, Lon: -80.19}, 5, false},
			{"Denver", geo.Point{Lat: 39.74, Lon: -104.99}, 4, false},
			{"San Francisco", geo.Point{Lat: 37.77, Lon: -122.42}, 6, true},
		},
		Profile:        LDNSProfile{Metro: 0.50, Regional: 0.37, National: 0.09, Offshore: 0.04},
		PublicAdoption: 0.08, OffshoreHub: hubLondon,
	},
	{
		Code: "JP", Name: "Japan", DemandShare: 8, InfraTier: 1,
		Cities: []CitySpec{
			{"Tokyo", geo.Point{Lat: 35.68, Lon: 139.65}, 20, true},
			{"Osaka", geo.Point{Lat: 34.69, Lon: 135.50}, 10, true},
			{"Nagoya", geo.Point{Lat: 35.18, Lon: 136.91}, 5, false},
			{"Fukuoka", geo.Point{Lat: 33.59, Lon: 130.40}, 3, false},
			{"Sapporo", geo.Point{Lat: 43.06, Lon: 141.35}, 2, false},
		},
		// Small median but a heavy far tail: multinationals with
		// centralised LDNSes outside Japan (paper §3.2).
		Profile:        LDNSProfile{Metro: 0.68, Regional: 0.17, National: 0.04, Offshore: 0.11},
		PublicAdoption: 0.02, OffshoreHub: hubAshburn,
	},
	{
		Code: "GB", Name: "United Kingdom", DemandShare: 6, InfraTier: 1,
		Cities: []CitySpec{
			{"London", geo.Point{Lat: 51.51, Lon: -0.13}, 14, true},
			{"Manchester", geo.Point{Lat: 53.48, Lon: -2.24}, 5, true},
			{"Edinburgh", geo.Point{Lat: 55.95, Lon: -3.19}, 2, false},
		},
		Profile:        LDNSProfile{Metro: 0.62, Regional: 0.30, National: 0.06, Offshore: 0.02},
		PublicAdoption: 0.07, OffshoreHub: hubFrankfurt,
	},
	{
		Code: "DE", Name: "Germany", DemandShare: 5, InfraTier: 1,
		Cities: []CitySpec{
			{"Frankfurt", geo.Point{Lat: 50.11, Lon: 8.68}, 8, true},
			{"Berlin", geo.Point{Lat: 52.52, Lon: 13.41}, 7, true},
			{"Munich", geo.Point{Lat: 48.14, Lon: 11.58}, 5, false},
			{"Hamburg", geo.Point{Lat: 53.55, Lon: 9.99}, 4, false},
		},
		Profile:        LDNSProfile{Metro: 0.64, Regional: 0.29, National: 0.05, Offshore: 0.02},
		PublicAdoption: 0.05, OffshoreHub: hubLondon,
	},
	{
		Code: "FR", Name: "France", DemandShare: 4.5, InfraTier: 1,
		Cities: []CitySpec{
			{"Paris", geo.Point{Lat: 48.86, Lon: 2.35}, 12, true},
			{"Lyon", geo.Point{Lat: 45.76, Lon: 4.84}, 4, true},
			{"Marseille", geo.Point{Lat: 43.30, Lon: 5.37}, 3, false},
		},
		Profile:        LDNSProfile{Metro: 0.63, Regional: 0.29, National: 0.06, Offshore: 0.02},
		PublicAdoption: 0.05, OffshoreHub: hubFrankfurt,
	},
	{
		Code: "BR", Name: "Brazil", DemandShare: 4, InfraTier: 2,
		Cities: []CitySpec{
			{"Sao Paulo", geo.Point{Lat: -23.55, Lon: -46.63}, 12, true},
			{"Rio de Janeiro", geo.Point{Lat: -22.91, Lon: -43.17}, 7, false},
			{"Brasilia", geo.Point{Lat: -15.78, Lon: -47.93}, 3, true},
			{"Salvador", geo.Point{Lat: -12.97, Lon: -38.50}, 3, false},
			{"Porto Alegre", geo.Point{Lat: -30.03, Lon: -51.23}, 3, false},
			{"Recife", geo.Point{Lat: -8.05, Lon: -34.88}, 2, false},
		},
		Profile:        LDNSProfile{Metro: 0.34, Regional: 0.20, National: 0.20, Offshore: 0.26},
		PublicAdoption: 0.20, OffshoreHub: hubAshburn,
	},
	{
		Code: "IN", Name: "India", DemandShare: 4, InfraTier: 3,
		Cities: []CitySpec{
			{"Mumbai", geo.Point{Lat: 19.08, Lon: 72.88}, 10, true},
			{"Delhi", geo.Point{Lat: 28.61, Lon: 77.21}, 10, true},
			{"Bangalore", geo.Point{Lat: 12.97, Lon: 77.59}, 6, false},
			{"Chennai", geo.Point{Lat: 13.08, Lon: 80.27}, 5, true},
			{"Kolkata", geo.Point{Lat: 22.57, Lon: 88.36}, 5, false},
			{"Hyderabad", geo.Point{Lat: 17.38, Lon: 78.48}, 4, false},
		},
		// Heavily centralised + offshore DNS: >1000-mile median, a
		// quarter of demand served from >4500 miles (paper Fig 6).
		Profile:        LDNSProfile{Metro: 0.17, Regional: 0.20, National: 0.28, Offshore: 0.35},
		PublicAdoption: 0.15, OffshoreHub: hubLondon,
	},
	{
		Code: "CA", Name: "Canada", DemandShare: 3.5, InfraTier: 1,
		Cities: []CitySpec{
			{"Toronto", geo.Point{Lat: 43.65, Lon: -79.38}, 9, true},
			{"Montreal", geo.Point{Lat: 45.50, Lon: -73.57}, 5, false},
			{"Vancouver", geo.Point{Lat: 49.28, Lon: -123.12}, 4, true},
			{"Calgary", geo.Point{Lat: 51.05, Lon: -114.07}, 2, false},
		},
		Profile:        LDNSProfile{Metro: 0.60, Regional: 0.30, National: 0.07, Offshore: 0.03},
		PublicAdoption: 0.06, OffshoreHub: hubAshburn,
	},
	{
		Code: "IT", Name: "Italy", DemandShare: 3, InfraTier: 2,
		Cities: []CitySpec{
			{"Milan", geo.Point{Lat: 45.46, Lon: 9.19}, 8, true},
			{"Rome", geo.Point{Lat: 41.90, Lon: 12.50}, 7, true},
			{"Naples", geo.Point{Lat: 40.85, Lon: 14.27}, 3, false},
		},
		Profile:        LDNSProfile{Metro: 0.52, Regional: 0.32, National: 0.12, Offshore: 0.04},
		PublicAdoption: 0.25, OffshoreHub: hubFrankfurt,
	},
	{
		Code: "AU", Name: "Australia", DemandShare: 3, InfraTier: 2,
		Cities: []CitySpec{
			{"Sydney", geo.Point{Lat: -33.87, Lon: 151.21}, 8, true},
			{"Melbourne", geo.Point{Lat: -37.81, Lon: 144.96}, 7, true},
			{"Brisbane", geo.Point{Lat: -27.47, Lon: 153.03}, 4, false},
			{"Perth", geo.Point{Lat: -31.95, Lon: 115.86}, 3, false},
		},
		// A quarter of demand served by LDNSes across the Pacific.
		Profile:        LDNSProfile{Metro: 0.42, Regional: 0.18, National: 0.12, Offshore: 0.28},
		PublicAdoption: 0.03, OffshoreHub: hubLosAng,
	},
	{
		Code: "KR", Name: "South Korea", DemandShare: 3, InfraTier: 1,
		Cities: []CitySpec{
			{"Seoul", geo.Point{Lat: 37.57, Lon: 126.98}, 18, true},
			{"Busan", geo.Point{Lat: 35.18, Lon: 129.08}, 5, false},
		},
		// Smallest client-LDNS distances in the paper.
		Profile:        LDNSProfile{Metro: 0.90, Regional: 0.08, National: 0.02, Offshore: 0},
		PublicAdoption: 0.02, OffshoreHub: hubTokyo,
	},
	{
		Code: "NL", Name: "Netherlands", DemandShare: 2.5, InfraTier: 1,
		Cities: []CitySpec{
			{"Amsterdam", geo.Point{Lat: 52.37, Lon: 4.90}, 7, true},
			{"Rotterdam", geo.Point{Lat: 51.92, Lon: 4.48}, 3, false},
		},
		Profile:        LDNSProfile{Metro: 0.80, Regional: 0.15, National: 0.03, Offshore: 0.02},
		PublicAdoption: 0.05, OffshoreHub: hubFrankfurt,
	},
	{
		Code: "ES", Name: "Spain", DemandShare: 2.5, InfraTier: 2,
		Cities: []CitySpec{
			{"Madrid", geo.Point{Lat: 40.42, Lon: -3.70}, 9, true},
			{"Barcelona", geo.Point{Lat: 41.39, Lon: 2.17}, 6, true},
			{"Seville", geo.Point{Lat: 37.39, Lon: -5.98}, 2, false},
		},
		Profile:        LDNSProfile{Metro: 0.66, Regional: 0.26, National: 0.06, Offshore: 0.02},
		PublicAdoption: 0.10, OffshoreHub: hubLondon,
	},
	{
		Code: "MX", Name: "Mexico", DemandShare: 2.5, InfraTier: 3,
		Cities: []CitySpec{
			{"Mexico City", geo.Point{Lat: 19.43, Lon: -99.13}, 12, true},
			{"Guadalajara", geo.Point{Lat: 20.66, Lon: -103.35}, 4, false},
			{"Monterrey", geo.Point{Lat: 25.69, Lon: -100.32}, 4, true},
		},
		Profile:        LDNSProfile{Metro: 0.16, Regional: 0.14, National: 0.14, Offshore: 0.56},
		PublicAdoption: 0.12, OffshoreHub: hubAshburn,
	},
	{
		Code: "RU", Name: "Russia", DemandShare: 2.5, InfraTier: 2,
		Cities: []CitySpec{
			{"Moscow", geo.Point{Lat: 55.76, Lon: 37.62}, 13, true},
			{"St Petersburg", geo.Point{Lat: 59.93, Lon: 30.34}, 6, true},
			{"Novosibirsk", geo.Point{Lat: 55.03, Lon: 82.92}, 3, false},
			{"Yekaterinburg", geo.Point{Lat: 56.84, Lon: 60.65}, 3, false},
		},
		Profile:        LDNSProfile{Metro: 0.45, Regional: 0.25, National: 0.24, Offshore: 0.06},
		PublicAdoption: 0.13, OffshoreHub: hubFrankfurt,
	},
	{
		Code: "TR", Name: "Turkey", DemandShare: 2, InfraTier: 3,
		Cities: []CitySpec{
			{"Istanbul", geo.Point{Lat: 41.01, Lon: 28.98}, 11, true},
			{"Ankara", geo.Point{Lat: 39.93, Lon: 32.86}, 4, false},
			{"Izmir", geo.Point{Lat: 38.42, Lon: 27.14}, 3, false},
		},
		// >1000-mile median: heavy reliance on European DNS infrastructure.
		Profile:        LDNSProfile{Metro: 0.22, Regional: 0.18, National: 0.22, Offshore: 0.38},
		PublicAdoption: 0.40, OffshoreHub: hubFrankfurt,
	},
	{
		Code: "TW", Name: "Taiwan", DemandShare: 2, InfraTier: 1,
		Cities: []CitySpec{
			{"Taipei", geo.Point{Lat: 25.03, Lon: 121.57}, 10, true},
			{"Kaohsiung", geo.Point{Lat: 22.63, Lon: 120.30}, 4, false},
		},
		Profile:        LDNSProfile{Metro: 0.88, Regional: 0.10, National: 0.02, Offshore: 0},
		PublicAdoption: 0.09, OffshoreHub: hubTokyo,
	},
	{
		Code: "CH", Name: "Switzerland", DemandShare: 2, InfraTier: 1,
		Cities: []CitySpec{
			{"Zurich", geo.Point{Lat: 47.38, Lon: 8.54}, 6, true},
			{"Geneva", geo.Point{Lat: 46.20, Lon: 6.14}, 3, false},
		},
		Profile:        LDNSProfile{Metro: 0.76, Regional: 0.18, National: 0.03, Offshore: 0.03},
		PublicAdoption: 0.06, OffshoreHub: hubFrankfurt,
	},
	{
		Code: "AR", Name: "Argentina", DemandShare: 2, InfraTier: 2,
		Cities: []CitySpec{
			{"Buenos Aires", geo.Point{Lat: -34.60, Lon: -58.38}, 11, true},
			{"Cordoba", geo.Point{Lat: -31.42, Lon: -64.18}, 3, false},
			{"Mendoza", geo.Point{Lat: -32.89, Lon: -68.83}, 2, false},
		},
		// Over a quarter of demand served from >4500 miles away.
		Profile:        LDNSProfile{Metro: 0.46, Regional: 0.18, National: 0.14, Offshore: 0.22},
		PublicAdoption: 0.18, OffshoreHub: hubMiami,
	},
	{
		Code: "ID", Name: "Indonesia", DemandShare: 2, InfraTier: 3,
		Cities: []CitySpec{
			{"Jakarta", geo.Point{Lat: -6.21, Lon: 106.85}, 10, true},
			{"Surabaya", geo.Point{Lat: -7.25, Lon: 112.75}, 4, false},
			{"Medan", geo.Point{Lat: 3.59, Lon: 98.67}, 3, false},
		},
		Profile:        LDNSProfile{Metro: 0.34, Regional: 0.22, National: 0.26, Offshore: 0.18},
		PublicAdoption: 0.25, OffshoreHub: hubSingapore,
	},
	{
		Code: "TH", Name: "Thailand", DemandShare: 1.5, InfraTier: 3,
		Cities: []CitySpec{
			{"Bangkok", geo.Point{Lat: 13.76, Lon: 100.50}, 9, true},
			{"Chiang Mai", geo.Point{Lat: 18.79, Lon: 98.98}, 2, false},
		},
		Profile:        LDNSProfile{Metro: 0.52, Regional: 0.20, National: 0.18, Offshore: 0.10},
		PublicAdoption: 0.11, OffshoreHub: hubSingapore,
	},
	{
		Code: "VN", Name: "Vietnam", DemandShare: 1.5, InfraTier: 3,
		Cities: []CitySpec{
			{"Ho Chi Minh City", geo.Point{Lat: 10.82, Lon: 106.63}, 7, true},
			{"Hanoi", geo.Point{Lat: 21.03, Lon: 105.85}, 6, true},
			{"Da Nang", geo.Point{Lat: 16.05, Lon: 108.21}, 2, false},
		},
		Profile:        LDNSProfile{Metro: 0.18, Regional: 0.16, National: 0.32, Offshore: 0.34},
		PublicAdoption: 0.45, OffshoreHub: hubSingapore,
	},
	{
		Code: "HK", Name: "Hong Kong", DemandShare: 1.5, InfraTier: 1,
		Cities: []CitySpec{
			{"Hong Kong", geo.Point{Lat: 22.32, Lon: 114.17}, 8, true},
		},
		Profile:        LDNSProfile{Metro: 0.86, Regional: 0.08, National: 0.02, Offshore: 0.04},
		PublicAdoption: 0.07, OffshoreHub: hubSingapore,
	},
	{
		Code: "MY", Name: "Malaysia", DemandShare: 1.5, InfraTier: 2,
		Cities: []CitySpec{
			{"Kuala Lumpur", geo.Point{Lat: 3.14, Lon: 101.69}, 6, true},
			{"Penang", geo.Point{Lat: 5.42, Lon: 100.33}, 2, false},
		},
		Profile:        LDNSProfile{Metro: 0.55, Regional: 0.20, National: 0.13, Offshore: 0.12},
		PublicAdoption: 0.22, OffshoreHub: hubSingapore,
	},
	{
		Code: "SG", Name: "Singapore", DemandShare: 1, InfraTier: 1,
		Cities: []CitySpec{
			{"Singapore", geo.Point{Lat: 1.35, Lon: 103.82}, 6, true},
		},
		Profile:        LDNSProfile{Metro: 0.85, Regional: 0.08, National: 0.03, Offshore: 0.04},
		PublicAdoption: 0.04, OffshoreHub: hubTokyo,
	},
}
