package world

import "eum/internal/geo"

// ProviderSpec describes a public resolver provider: a third-party DNS
// service reached via IP anycast (paper §3.2). Each site answers clients
// routed to it and talks to authoritative servers from a unicast address,
// which is how the CDN geolocates the LDNS.
type ProviderSpec struct {
	Name string
	// Share is the provider's share of public-resolver demand.
	Share float64
	// Sites are the provider's resolver deployments. The paper notes the
	// largest provider had no South American presence at the time, which
	// is why Argentina and Brazil saw the largest client-LDNS distances
	// (Fig 8); the default site lists reproduce that gap.
	Sites []SiteSpec
	// MisrouteProb is the probability anycast routes a client to a
	// non-nearest site (BGP path selection is not geographic; paper cites
	// known anycast limitations [23]).
	MisrouteProb float64
	// SupportsECS reports whether the provider forwards EDNS0
	// client-subnet information (both major providers in the paper do).
	SupportsECS bool
}

// SiteSpec is one resolver deployment site of a public provider.
type SiteSpec struct {
	Name string
	Loc  geo.Point
}

// DefaultProviders returns the two modelled public resolver providers,
// patterned after the major providers in the paper (a Google-Public-DNS-like
// provider and an OpenDNS-like provider), with 2014-era footprints: no
// South American sites, Asia served mainly from Singapore/Tokyo/Taiwan.
func DefaultProviders() []ProviderSpec {
	return []ProviderSpec{
		{
			Name: "globaldns", Share: 0.70, MisrouteProb: 0.15, SupportsECS: true,
			Sites: []SiteSpec{
				{"us-east", geo.Point{Lat: 39.04, Lon: -77.49}},     // Ashburn
				{"us-west", geo.Point{Lat: 37.42, Lon: -122.08}},    // Mountain View
				{"us-central", geo.Point{Lat: 41.26, Lon: -95.94}},  // Council Bluffs
				{"eu-west", geo.Point{Lat: 53.34, Lon: -6.27}},      // Dublin
				{"eu-central", geo.Point{Lat: 50.11, Lon: 8.68}},    // Frankfurt
				{"eu-north", geo.Point{Lat: 53.55, Lon: 9.99}},      // Hamburg
				{"asia-sg", geo.Point{Lat: 1.35, Lon: 103.82}},      // Singapore
				{"asia-tw", geo.Point{Lat: 24.05, Lon: 120.52}},     // Changhua
				{"asia-jp", geo.Point{Lat: 35.68, Lon: 139.65}},     // Tokyo
				{"oceania-au", geo.Point{Lat: -33.87, Lon: 151.21}}, // Sydney
			},
		},
		{
			Name: "openresolve", Share: 0.30, MisrouteProb: 0.12, SupportsECS: true,
			Sites: []SiteSpec{
				{"us-east", geo.Point{Lat: 40.71, Lon: -74.01}},  // New York
				{"us-west", geo.Point{Lat: 34.05, Lon: -118.24}}, // Los Angeles
				{"eu-west", geo.Point{Lat: 51.51, Lon: -0.13}},   // London
				{"eu-central", geo.Point{Lat: 52.37, Lon: 4.90}}, // Amsterdam
				{"asia-sg", geo.Point{Lat: 1.35, Lon: 103.82}},   // Singapore
				{"asia-hk", geo.Point{Lat: 22.32, Lon: 114.17}},  // Hong Kong
			},
		},
	}
}
