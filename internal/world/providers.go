package world

import "eum/internal/geo"

// ECSMode classifies a public provider's EDNS client-subnet policy. The
// 2015 paper's two providers both forwarded full /24 prefixes, but the
// public-resolver era that followed split three ways: some providers
// forward nothing (privacy stance), some truncate the prefix they reveal
// (commonly /20 for IPv4), and some forward the conventional /24 (/48-/56
// for IPv6).
type ECSMode uint8

// ECS policy modes. ECSDefault is the zero value for compatibility with
// pre-existing specs: it resolves to full forwarding when SupportsECS is
// set and none otherwise.
const (
	ECSDefault ECSMode = iota
	ECSFull            // forward /24 (v4) and /48 (v6)
	ECSTruncated       // forward a privacy-truncated prefix (default /20, /56)
	ECSNone            // never attach ECS
)

// String returns the mode name.
func (m ECSMode) String() string {
	switch m {
	case ECSDefault:
		return "default"
	case ECSFull:
		return "full"
	case ECSTruncated:
		return "truncated"
	case ECSNone:
		return "none"
	}
	return "unknown"
}

// Conventional and truncated ECS source prefix lengths. Full forwarding
// reveals the mapping unit (/24 v4, /48 v6); truncation reveals less than
// one IPv4 unit (/20) while the IPv6 default follows RFC 7871's /56
// recommendation.
const (
	ECSFullPrefixV4      uint8 = 24
	ECSFullPrefixV6      uint8 = 48
	ECSTruncatedPrefixV4 uint8 = 20
	ECSTruncatedPrefixV6 uint8 = 56
)

// ECSPolicy is a provider's client-subnet forwarding behaviour: the mode,
// and (for ECSTruncated) the prefix lengths it truncates to. Zero prefix
// fields take the mode's conventional defaults.
type ECSPolicy struct {
	Mode     ECSMode
	PrefixV4 uint8
	PrefixV6 uint8
}

// ProviderSpec describes a public resolver provider: a third-party DNS
// service reached via IP anycast (paper §3.2). Each site answers clients
// routed to it and talks to authoritative servers from a unicast address,
// which is how the CDN geolocates the LDNS.
type ProviderSpec struct {
	Name string
	// Share is the provider's share of public-resolver demand.
	Share float64
	// Sites are the provider's resolver deployments. The paper notes the
	// largest provider had no South American presence at the time, which
	// is why Argentina and Brazil saw the largest client-LDNS distances
	// (Fig 8); the default site lists reproduce that gap.
	Sites []SiteSpec
	// MisrouteProb is the probability anycast routes an origin AS to a
	// non-nearest site (BGP path selection is not geographic; paper cites
	// known anycast limitations [23]). Misrouting is decided per origin
	// AS and exit region, not per client block: whole networks land at
	// the wrong site together.
	MisrouteProb float64
	// SupportsECS reports whether the provider forwards EDNS0
	// client-subnet information (both major providers in the paper do).
	// Kept alongside ECS for compatibility: when ECS.Mode is ECSDefault,
	// SupportsECS selects between full forwarding and none.
	SupportsECS bool
	// ECS refines SupportsECS with the provider's forwarding policy:
	// none, truncated (e.g. /20), or full (/24). The zero value defers
	// to SupportsECS.
	ECS ECSPolicy
}

// ECSPrefixes resolves the provider's policy to the IPv4/IPv6 source
// prefix lengths its sites forward; (0, 0) means the provider sends no
// client-subnet information.
func (p ProviderSpec) ECSPrefixes() (v4, v6 uint8) {
	mode := p.ECS.Mode
	if mode == ECSDefault {
		if p.SupportsECS {
			mode = ECSFull
		} else {
			mode = ECSNone
		}
	}
	switch mode {
	case ECSNone:
		return 0, 0
	case ECSTruncated:
		v4, v6 = ECSTruncatedPrefixV4, ECSTruncatedPrefixV6
	default:
		v4, v6 = ECSFullPrefixV4, ECSFullPrefixV6
	}
	if p.ECS.PrefixV4 > 0 {
		v4 = p.ECS.PrefixV4
	}
	if p.ECS.PrefixV6 > 0 {
		v6 = p.ECS.PrefixV6
	}
	return v4, v6
}

// SiteSpec is one resolver deployment site of a public provider.
type SiteSpec struct {
	Name string
	Loc  geo.Point
}

// DefaultProviders returns the two modelled public resolver providers,
// patterned after the major providers in the paper (a Google-Public-DNS-like
// provider and an OpenDNS-like provider), with 2014-era footprints: no
// South American sites, Asia served mainly from Singapore/Tokyo/Taiwan.
func DefaultProviders() []ProviderSpec {
	return []ProviderSpec{
		{
			Name: "globaldns", Share: 0.70, MisrouteProb: 0.15, SupportsECS: true,
			ECS: ECSPolicy{Mode: ECSFull},
			Sites: []SiteSpec{
				{"us-east", geo.Point{Lat: 39.04, Lon: -77.49}},     // Ashburn
				{"us-west", geo.Point{Lat: 37.42, Lon: -122.08}},    // Mountain View
				{"us-central", geo.Point{Lat: 41.26, Lon: -95.94}},  // Council Bluffs
				{"eu-west", geo.Point{Lat: 53.34, Lon: -6.27}},      // Dublin
				{"eu-central", geo.Point{Lat: 50.11, Lon: 8.68}},    // Frankfurt
				{"eu-north", geo.Point{Lat: 53.55, Lon: 9.99}},      // Hamburg
				{"asia-sg", geo.Point{Lat: 1.35, Lon: 103.82}},      // Singapore
				{"asia-tw", geo.Point{Lat: 24.05, Lon: 120.52}},     // Changhua
				{"asia-jp", geo.Point{Lat: 35.68, Lon: 139.65}},     // Tokyo
				{"oceania-au", geo.Point{Lat: -33.87, Lon: 151.21}}, // Sydney
			},
		},
		{
			Name: "openresolve", Share: 0.30, MisrouteProb: 0.12, SupportsECS: true,
			ECS: ECSPolicy{Mode: ECSFull},
			Sites: []SiteSpec{
				{"us-east", geo.Point{Lat: 40.71, Lon: -74.01}},  // New York
				{"us-west", geo.Point{Lat: 34.05, Lon: -118.24}}, // Los Angeles
				{"eu-west", geo.Point{Lat: 51.51, Lon: -0.13}},   // London
				{"eu-central", geo.Point{Lat: 52.37, Lon: 4.90}}, // Amsterdam
				{"asia-sg", geo.Point{Lat: 1.35, Lon: 103.82}},   // Singapore
				{"asia-hk", geo.Point{Lat: 22.32, Lon: 114.17}},  // Hong Kong
			},
		},
	}
}

// ModernProviders returns a public-resolver era provider set for the
// ROADMAP's scenario pack: four providers with the split ECS policies and
// the wider anycast footprints (including South America) of the
// post-paper landscape. One provider truncates ECS to /20, one sends no
// ECS at all — the configurations the /20 grid experiments
// (eumsim -fig ecsgrid / -fig ampgrid) stress.
func ModernProviders() []ProviderSpec {
	sa := []SiteSpec{
		{"sa-br", geo.Point{Lat: -23.55, Lon: -46.63}}, // São Paulo
		{"sa-cl", geo.Point{Lat: -33.45, Lon: -70.67}}, // Santiago
	}
	return []ProviderSpec{
		{
			// Full-/24 forwarder with the broadest footprint.
			Name: "globaldns", Share: 0.55, MisrouteProb: 0.10, SupportsECS: true,
			ECS: ECSPolicy{Mode: ECSFull},
			Sites: append([]SiteSpec{
				{"us-east", geo.Point{Lat: 39.04, Lon: -77.49}},
				{"us-west", geo.Point{Lat: 37.42, Lon: -122.08}},
				{"us-central", geo.Point{Lat: 41.26, Lon: -95.94}},
				{"eu-west", geo.Point{Lat: 53.34, Lon: -6.27}},
				{"eu-central", geo.Point{Lat: 50.11, Lon: 8.68}},
				{"asia-sg", geo.Point{Lat: 1.35, Lon: 103.82}},
				{"asia-jp", geo.Point{Lat: 35.68, Lon: 139.65}},
				{"asia-in", geo.Point{Lat: 19.08, Lon: 72.88}}, // Mumbai
				{"oceania-au", geo.Point{Lat: -33.87, Lon: 151.21}},
			}, sa...),
		},
		{
			// Privacy-truncating forwarder: reveals only /20 (v4) / /56 (v6).
			Name: "quadtrunc", Share: 0.20, MisrouteProb: 0.12, SupportsECS: true,
			ECS: ECSPolicy{Mode: ECSTruncated},
			Sites: []SiteSpec{
				{"us-east", geo.Point{Lat: 40.71, Lon: -74.01}},
				{"us-west", geo.Point{Lat: 34.05, Lon: -118.24}},
				{"eu-west", geo.Point{Lat: 51.51, Lon: -0.13}},
				{"eu-central", geo.Point{Lat: 52.37, Lon: 4.90}},
				{"asia-sg", geo.Point{Lat: 1.35, Lon: 103.82}},
				{"sa-br", geo.Point{Lat: -23.55, Lon: -46.63}},
			},
		},
		{
			// Privacy-absolutist: a wide anycast mesh but no ECS at all.
			Name: "nullsubnet", Share: 0.18, MisrouteProb: 0.08,
			ECS: ECSPolicy{Mode: ECSNone},
			Sites: append([]SiteSpec{
				{"us-east", geo.Point{Lat: 38.90, Lon: -77.04}},
				{"us-west", geo.Point{Lat: 47.61, Lon: -122.33}},
				{"eu-west", geo.Point{Lat: 48.86, Lon: 2.35}},
				{"eu-north", geo.Point{Lat: 59.33, Lon: 18.07}},
				{"asia-jp", geo.Point{Lat: 35.68, Lon: 139.65}},
				{"asia-hk", geo.Point{Lat: 22.32, Lon: 114.17}},
				{"oceania-au", geo.Point{Lat: -33.87, Lon: 151.21}},
			}, sa...),
		},
		{
			// Legacy regional provider still forwarding full prefixes.
			Name: "openresolve", Share: 0.07, MisrouteProb: 0.12, SupportsECS: true,
			Sites: []SiteSpec{
				{"us-east", geo.Point{Lat: 40.71, Lon: -74.01}},
				{"eu-central", geo.Point{Lat: 52.37, Lon: 4.90}},
				{"asia-sg", geo.Point{Lat: 1.35, Lon: 103.82}},
			},
		},
	}
}
