package world

import (
	"math"
	"testing"

	"eum/internal/par"
)

// TestGenerateWorkerCountInvariant is the contract that makes parallel
// generation safe: the world must be bit-identical whether one worker or
// many generated it.
func TestGenerateWorkerCountInvariant(t *testing.T) {
	gen := func(workers int) *World {
		par.SetWorkers(workers)
		defer par.SetWorkers(0)
		return MustGenerate(Config{Seed: 5, NumBlocks: 1500, IPv6Fraction: 0.2})
	}
	w1 := gen(1)
	w8 := gen(8)

	if len(w1.Blocks) != len(w8.Blocks) || len(w1.LDNSes) != len(w8.LDNSes) ||
		len(w1.ASes) != len(w8.ASes) || len(w1.Countries) != len(w8.Countries) {
		t.Fatalf("sizes differ: %d/%d/%d blocks, %d/%d LDNSes",
			len(w1.Blocks), len(w8.Blocks), len(w1.ASes), len(w1.LDNSes), len(w8.LDNSes))
	}
	for i := range w1.Blocks {
		a, b := w1.Blocks[i], w8.Blocks[i]
		if a.ID != b.ID || a.Prefix != b.Prefix || a.Loc != b.Loc ||
			a.City != b.City || a.Access != b.Access ||
			math.Float64bits(a.Demand) != math.Float64bits(b.Demand) ||
			a.AS.ASN != b.AS.ASN || a.LDNS.ID != b.LDNS.ID || a.LDNS.Addr != b.LDNS.Addr {
			t.Fatalf("block %d differs:\n  w1: %+v\n  w8: %+v", i, a, b)
		}
	}
	for i := range w1.LDNSes {
		a, b := w1.LDNSes[i], w8.LDNSes[i]
		if a.ID != b.ID || a.Addr != b.Addr || a.Loc != b.Loc || a.Kind != b.Kind ||
			a.ASN != b.ASN || a.Provider != b.Provider ||
			math.Float64bits(a.Demand) != math.Float64bits(b.Demand) ||
			len(a.Blocks) != len(b.Blocks) {
			t.Fatalf("LDNS %d differs:\n  w1: %+v\n  w8: %+v", i, a, b)
		}
	}
	for i := range w1.ASes {
		a, b := w1.ASes[i], w8.ASes[i]
		if a.ASN != b.ASN || a.Large != b.Large ||
			math.Float64bits(a.Demand) != math.Float64bits(b.Demand) ||
			len(a.CIDRs) != len(b.CIDRs) {
			t.Fatalf("AS %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.CIDRs {
			if a.CIDRs[j] != b.CIDRs[j] {
				t.Fatalf("AS %d CIDR %d differs: %v vs %v", i, j, a.CIDRs[j], b.CIDRs[j])
			}
		}
	}
}
