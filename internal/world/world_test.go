package world

import (
	"fmt"
	"net/netip"
	"testing"

	"eum/internal/geo"
	"eum/internal/stats"
)

// testWorld caches a mid-sized world shared across tests in this package.
var testWorld = MustGenerate(Config{Seed: 7, NumBlocks: 8000})

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{Seed: 1, NumBlocks: 0}); err == nil {
		t.Error("NumBlocks=0 accepted")
	}
	if _, err := Generate(Config{Seed: 1, NumBlocks: -5}); err == nil {
		t.Error("negative NumBlocks accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w1 := MustGenerate(Config{Seed: 42, NumBlocks: 1000})
	w2 := MustGenerate(Config{Seed: 42, NumBlocks: 1000})
	if len(w1.Blocks) != len(w2.Blocks) || len(w1.LDNSes) != len(w2.LDNSes) {
		t.Fatalf("sizes differ: %d/%d vs %d/%d",
			len(w1.Blocks), len(w1.LDNSes), len(w2.Blocks), len(w2.LDNSes))
	}
	for i := range w1.Blocks {
		a, b := w1.Blocks[i], w2.Blocks[i]
		if a.Prefix != b.Prefix || a.Loc != b.Loc || a.Demand != b.Demand ||
			a.LDNS.Addr != b.LDNS.Addr {
			t.Fatalf("block %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	w1 := MustGenerate(Config{Seed: 1, NumBlocks: 500})
	w2 := MustGenerate(Config{Seed: 2, NumBlocks: 500})
	same := 0
	for i := range w1.Blocks {
		if i < len(w2.Blocks) && w1.Blocks[i].Loc == w2.Blocks[i].Loc {
			same++
		}
	}
	if same == len(w1.Blocks) {
		t.Error("different seeds produced identical worlds")
	}
}

func TestBlockInvariants(t *testing.T) {
	seen := map[netip.Prefix]bool{}
	for _, b := range testWorld.Blocks {
		if b.Prefix.Bits() != 24 {
			t.Fatalf("block prefix %v is not a /24", b.Prefix)
		}
		if seen[b.Prefix] {
			t.Fatalf("duplicate prefix %v", b.Prefix)
		}
		seen[b.Prefix] = true
		if !b.Loc.IsValid() {
			t.Fatalf("invalid location %v", b.Loc)
		}
		if b.LDNS == nil {
			t.Fatal("block without LDNS")
		}
		if b.Demand <= 0 {
			t.Fatalf("non-positive demand %v", b.Demand)
		}
		if b.AS == nil || b.Country == nil {
			t.Fatal("block missing AS or country")
		}
	}
}

func TestIDsUnique(t *testing.T) {
	seen := map[uint64]bool{}
	for _, b := range testWorld.Blocks {
		if seen[b.ID] {
			t.Fatalf("duplicate block ID %d", b.ID)
		}
		seen[b.ID] = true
	}
	for _, l := range testWorld.LDNSes {
		if seen[l.ID] {
			t.Fatalf("LDNS ID %d collides", l.ID)
		}
		seen[l.ID] = true
	}
}

func TestTotalDemandNormalised(t *testing.T) {
	if d := testWorld.TotalDemand(); d < 0.999 || d > 1.001 {
		t.Errorf("total demand = %v, want ~1", d)
	}
}

func TestCountryDemandShares(t *testing.T) {
	// Country demand should match the normalised spec share.
	var totalShare float64
	for _, cs := range Countries {
		totalShare += cs.DemandShare
	}
	for _, c := range testWorld.Countries {
		var sum float64
		for _, b := range c.Blocks {
			sum += b.Demand
		}
		want := c.Spec.DemandShare / totalShare
		if sum < want*0.98 || sum > want*1.02 {
			t.Errorf("%s demand = %.4f, want ~%.4f", c.Code(), sum, want)
		}
	}
}

func TestPublicAdoptionWorldwide(t *testing.T) {
	// Paper §3.2: ~8% of client demand originates from public resolvers.
	frac := testWorld.PublicDemandFraction()
	if frac < 0.05 || frac > 0.14 {
		t.Errorf("public resolver demand fraction = %.3f, want ~0.08", frac)
	}
}

func TestECSSupport(t *testing.T) {
	for _, l := range testWorld.LDNSes {
		if l.IsPublic() && !l.SupportsECS {
			t.Errorf("public resolver %s/%s does not support ECS", l.Provider, l.Site)
		}
		if !l.IsPublic() && l.SupportsECS {
			t.Errorf("ISP LDNS %v unexpectedly supports ECS", l.Addr)
		}
	}
}

// distanceStats returns demand-weighted client-LDNS distance data for all
// blocks and for the public-resolver subset.
func distanceStats(w *World) (all, pub *stats.Dataset) {
	all, pub = &stats.Dataset{}, &stats.Dataset{}
	for _, b := range w.Blocks {
		d := b.ClientLDNSDistance()
		all.Add(d, b.Demand)
		if b.LDNS.IsPublic() {
			pub.Add(d, b.Demand)
		}
	}
	return all, pub
}

func TestGlobalDistanceShape(t *testing.T) {
	all, pub := distanceStats(testWorld)
	// Paper: overall median 162 mi; public-resolver median 1028 mi. The
	// synthetic world must preserve "public resolvers are several times
	// farther" and keep both medians in plausible bands.
	am, pm := all.Median(), pub.Median()
	if am < 5 || am > 400 {
		t.Errorf("overall median distance = %.0f mi, want O(10-400)", am)
	}
	if pm < 500 || pm > 2500 {
		t.Errorf("public median distance = %.0f mi, want O(500-2500)", pm)
	}
	if pm < 3*am {
		t.Errorf("public median (%.0f) should be >= 3x overall (%.0f)", pm, am)
	}
}

func TestHighVsLowExpectationCountries(t *testing.T) {
	medians := map[string]float64{}
	for _, c := range testWorld.Countries {
		var d stats.Dataset
		for _, b := range c.Blocks {
			d.Add(b.ClientLDNSDistance(), b.Demand)
		}
		medians[c.Code()] = d.Median()
	}
	// Paper Fig 6: IN, TR, VN, MX medians over ~1000 miles.
	for _, cc := range []string{"IN", "TR", "MX"} {
		if medians[cc] < 500 {
			t.Errorf("%s median = %.0f, want > 500", cc, medians[cc])
		}
	}
	if medians["VN"] < 400 {
		t.Errorf("VN median = %.0f, want > 400", medians["VN"])
	}
	// Korea and Taiwan have the smallest distances.
	for _, cc := range []string{"KR", "TW", "NL"} {
		if medians[cc] > 120 {
			t.Errorf("%s median = %.0f, want < 120", cc, medians[cc])
		}
	}
}

func TestFarTailCountries(t *testing.T) {
	// Paper Fig 6: IN, BR, AU, AR serve over a quarter of demand from
	// LDNSes more than 4500 miles away.
	for _, c := range testWorld.Countries {
		switch c.Code() {
		case "IN", "BR", "AU", "AR":
			var d stats.Dataset
			for _, b := range c.Blocks {
				d.Add(b.ClientLDNSDistance(), b.Demand)
			}
			// The offshore/national demand share hovers around a quarter,
			// so a p75 threshold is knife-edge across seeds; assert the
			// tail mass directly with a little statistical headroom.
			if far := 1 - d.FractionAtOrBelow(2500); far < 0.15 {
				t.Errorf("%s demand beyond 2500mi = %.0f%%, want a heavy far tail (> 15%%)",
					c.Code(), 100*far)
			}
		}
	}
}

func TestSmallASesFartherFromLDNS(t *testing.T) {
	// Paper Fig 10: smaller ASes (by demand) have larger client-LDNS
	// distances because they outsource DNS.
	var small, large stats.Dataset
	for _, as := range testWorld.ASes {
		for _, b := range as.Blocks {
			if as.Large {
				large.Add(b.ClientLDNSDistance(), b.Demand)
			} else {
				small.Add(b.ClientLDNSDistance(), b.Demand)
			}
		}
	}
	if small.Median() <= large.Median() {
		t.Errorf("small-AS median (%.0f) should exceed large-AS median (%.0f)",
			small.Median(), large.Median())
	}
}

func TestPublicResolverClusterRadii(t *testing.T) {
	// Paper §3.3: 99% of public resolver demand comes from client
	// clusters with radius 470-3800 miles; ISP clusters are much smaller.
	var pubRadii, ispRadii stats.Dataset
	for _, l := range testWorld.LDNSes {
		if len(l.Blocks) < 2 {
			continue
		}
		pts := make([]geo.Weighted, 0, len(l.Blocks))
		for _, b := range l.Blocks {
			pts = append(pts, geo.Weighted{Point: b.Loc, Weight: b.Demand})
		}
		r := geo.Radius(pts)
		if l.IsPublic() {
			pubRadii.Add(r, l.Demand)
		} else {
			ispRadii.Add(r, l.Demand)
		}
	}
	if pubRadii.Len() == 0 || ispRadii.Len() == 0 {
		t.Fatal("no clusters found")
	}
	if pm, im := pubRadii.Median(), ispRadii.Median(); pm < 300 || pm < 4*im {
		t.Errorf("public cluster radius median %.0f should be large and >> ISP median %.0f", pm, im)
	}
}

func TestPublicClusterNotCentred(t *testing.T) {
	// Paper §3.3: for public resolvers the mean client-LDNS distance
	// exceeds the cluster radius — the site is not at the centroid.
	var exceed, total float64
	for _, l := range testWorld.LDNSes {
		if !l.IsPublic() || len(l.Blocks) < 5 {
			continue
		}
		pts := make([]geo.Weighted, 0, len(l.Blocks))
		for _, b := range l.Blocks {
			pts = append(pts, geo.Weighted{Point: b.Loc, Weight: b.Demand})
		}
		total++
		if geo.MeanDistanceTo(pts, l.Loc) > geo.Radius(pts) {
			exceed++
		}
	}
	if total == 0 {
		t.Fatal("no public clusters")
	}
	if exceed/total < 0.5 {
		t.Errorf("only %.0f%% of public clusters have mean distance > radius", 100*exceed/total)
	}
}

func TestBGPCIDRsCoverBlocks(t *testing.T) {
	cidrs := testWorld.BGPCIDRs()
	if len(cidrs) == 0 {
		t.Fatal("no CIDRs")
	}
	// Every block must be contained in exactly one of its AS's CIDRs.
	for _, as := range testWorld.ASes {
		for _, b := range as.Blocks {
			n := 0
			for _, c := range as.CIDRs {
				if c.Contains(b.Prefix.Addr()) {
					n++
				}
			}
			if n != 1 {
				t.Fatalf("block %v covered by %d CIDRs of its AS", b.Prefix, n)
			}
		}
	}
	ratio := float64(len(testWorld.Blocks)) / float64(len(cidrs))
	// Paper §5.1: 3.76M /24 blocks -> ~517K CIDRs, a ~7x reduction.
	if ratio < 3 || ratio > 12 {
		t.Errorf("blocks/CIDR ratio = %.1f, want ~4-10", ratio)
	}
}

func TestAggregateCIDRs(t *testing.T) {
	mkBlocks := func(nets ...uint32) []*ClientBlock {
		var out []*ClientBlock
		for _, n := range nets {
			out = append(out, &ClientBlock{Prefix: netip.PrefixFrom(ipFromUint32(n<<8), 24)})
		}
		return out
	}
	cases := []struct {
		name string
		nets []uint32
		want []string
	}{
		{"single", []uint32{0x010000}, []string{"1.0.0.0/24"}},
		{"aligned-pair", []uint32{0x010000, 0x010001}, []string{"1.0.0.0/23"}},
		{"unaligned-pair", []uint32{0x010001, 0x010002}, []string{"1.0.1.0/24", "1.0.2.0/24"}},
		{"run-of-8", []uint32{0x010000, 0x010001, 0x010002, 0x010003, 0x010004, 0x010005, 0x010006, 0x010007},
			[]string{"1.0.0.0/21"}},
		{"gap", []uint32{0x010000, 0x010002}, []string{"1.0.0.0/24", "1.0.2.0/24"}},
		{"empty", nil, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := aggregateCIDRs(mkBlocks(c.nets...))
			if len(got) != len(c.want) {
				t.Fatalf("got %v, want %v", got, c.want)
			}
			for i := range got {
				if got[i].String() != c.want[i] {
					t.Errorf("cidr %d = %v, want %v", i, got[i], c.want[i])
				}
			}
		})
	}
}

func TestAggregateCIDRsCapped(t *testing.T) {
	// A run of 32 must split into /21s (8 blocks max per aggregate).
	var blocks []*ClientBlock
	for n := uint32(0); n < 32; n++ {
		blocks = append(blocks, &ClientBlock{Prefix: netip.PrefixFrom(ipFromUint32((0x010000+n)<<8), 24)})
	}
	got := aggregateCIDRs(blocks)
	if len(got) != 4 {
		t.Fatalf("32-block run -> %d CIDRs, want 4 x /21: %v", len(got), got)
	}
	for _, p := range got {
		if p.Bits() != 21 {
			t.Errorf("aggregate %v, want /21", p)
		}
	}
}

func TestBlockByPrefix(t *testing.T) {
	b := testWorld.Blocks[17]
	if got := testWorld.BlockByPrefix(b.Prefix); got != b {
		t.Error("BlockByPrefix did not find existing block")
	}
	if got := testWorld.BlockByPrefix(netip.MustParsePrefix("203.0.113.0/24")); got != nil {
		t.Error("BlockByPrefix found a nonexistent block")
	}
}

func TestAnycastMisrouting(t *testing.T) {
	// Some public-resolver blocks should land at a non-nearest site.
	misrouted := 0
	total := 0
	for _, b := range testWorld.Blocks {
		if !b.LDNS.IsPublic() {
			continue
		}
		total++
		sites := testWorld.publicSites[b.LDNS.Provider]
		best := sites[0]
		for _, s := range sites[1:] {
			if geo.Distance(s.Loc, b.Loc) < geo.Distance(best.Loc, b.Loc) {
				best = s
			}
		}
		if best != b.LDNS {
			misrouted++
		}
	}
	if total == 0 {
		t.Fatal("no public blocks")
	}
	frac := float64(misrouted) / float64(total)
	if frac < 0.03 || frac > 0.35 {
		t.Errorf("misrouted fraction = %.3f, want ~0.1-0.2", frac)
	}
}

func TestDemandConcentration(t *testing.T) {
	// Paper Fig 21: demand is heavy-tailed over blocks — the top ~11% of
	// blocks carry about half the demand; LDNS demand is far more
	// concentrated than block demand.
	blocks := append([]*ClientBlock{}, testWorld.Blocks...)
	sortByDemandDesc(blocks)
	var cum float64
	topFrac := -1.0
	for i, b := range blocks {
		cum += b.Demand
		if cum >= 0.5 {
			topFrac = float64(i+1) / float64(len(blocks))
			break
		}
	}
	if topFrac < 0.02 || topFrac > 0.3 {
		t.Errorf("top %.1f%% of blocks carry half the demand, want ~5-25%%", 100*topFrac)
	}
}

func sortByDemandDesc(blocks []*ClientBlock) {
	for i := 1; i < len(blocks); i++ {
		for j := i; j > 0 && blocks[j].Demand > blocks[j-1].Demand; j-- {
			blocks[j], blocks[j-1] = blocks[j-1], blocks[j]
		}
	}
}

func TestLDNSKindString(t *testing.T) {
	kinds := []LDNSKind{KindISPMetro, KindISPRegional, KindISPNational, KindISPOffshore, KindPublic}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Errorf("kind %d stringifies to %q", k, s)
		}
		seen[s] = true
	}
	if LDNSKind(99).String() != "unknown" {
		t.Error("invalid kind should stringify to unknown")
	}
}

func TestProfileSumsToOne(t *testing.T) {
	for _, cs := range Countries {
		p := cs.Profile
		sum := p.Metro + p.Regional + p.National + p.Offshore
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s profile sums to %v", cs.Code, sum)
		}
		if cs.PublicAdoption < 0 || cs.PublicAdoption > 1 {
			t.Errorf("%s adoption %v out of range", cs.Code, cs.PublicAdoption)
		}
		if len(cs.Cities) == 0 {
			t.Errorf("%s has no cities", cs.Code)
		}
		for _, city := range cs.Cities {
			if !city.Loc.IsValid() {
				t.Errorf("%s city %s invalid location", cs.Code, city.Name)
			}
		}
	}
}

func TestProviderSharesSumToOne(t *testing.T) {
	var sum float64
	for _, p := range DefaultProviders() {
		sum += p.Share
		if len(p.Sites) == 0 {
			t.Errorf("provider %s has no sites", p.Name)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("provider shares sum to %v", sum)
	}
}

func TestNoSouthAmericanPublicSites(t *testing.T) {
	// The 2014-era footprint gap behind Fig 8's AR/BR outliers.
	for _, p := range DefaultProviders() {
		for _, s := range p.Sites {
			if s.Loc.Lat < 0 && s.Loc.Lon < -30 && s.Loc.Lon > -90 {
				t.Errorf("provider %s has a South American site %s", p.Name, s.Name)
			}
		}
	}
}

func ExampleGenerate() {
	w := MustGenerate(Config{Seed: 1, NumBlocks: 2000})
	fmt.Println(len(w.Countries) == len(Countries), w.TotalDemand() > 0.99)
	// Output: true true
}
