package world

import (
	"testing"

	"eum/internal/geo"
)

// TestPickProviderIndexDegenerate pins the share-accumulation fix: the
// loop must terminate on the last *index*, not on name equality with the
// last provider. With duplicate (or empty) provider names, a
// name-equality check short-circuits on the first iteration and silently
// mis-selects; with shares summing below 1, the last provider must absorb
// the remainder.
func TestPickProviderIndexDegenerate(t *testing.T) {
	dup := []ProviderSpec{
		{Name: "mirror", Share: 0.5},
		{Name: "other", Share: 0.3},
		{Name: "mirror", Share: 0.2},
	}
	empty := []ProviderSpec{
		{Name: "", Share: 0.5},
		{Name: "", Share: 0.5},
	}
	deficit := []ProviderSpec{
		{Name: "a", Share: 0.3},
		{Name: "b", Share: 0.3},
	}
	cases := []struct {
		name      string
		providers []ProviderSpec
		u         float64
		want      int
	}{
		{"dup-first-band", dup, 0.4, 0},
		{"dup-middle-band", dup, 0.6, 1}, // name check would pick index 0
		{"dup-last-band", dup, 0.95, 2},
		{"empty-names-second", empty, 0.7, 1}, // name check would pick index 0
		{"deficit-remainder", deficit, 0.9, 1},
		{"deficit-first", deficit, 0.1, 0},
		{"single", deficit[:1], 0.99, 0},
		{"none", nil, 0.5, -1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := pickProviderIndex(c.u, c.providers); got != c.want {
				t.Errorf("pickProviderIndex(%v) = %d, want %d", c.u, got, c.want)
			}
		})
	}
}

// TestProviderShareDistribution checks the share draw still lands
// providers proportionally on the default set (the fix must not change
// well-formed selection).
func TestProviderShareDistribution(t *testing.T) {
	byProv := map[string]int{}
	total := 0
	for _, b := range testWorld.Blocks {
		if b.LDNS.IsPublic() {
			byProv[b.LDNS.Provider]++
			total++
		}
	}
	if total == 0 {
		t.Fatal("no public blocks")
	}
	frac := float64(byProv["globaldns"]) / float64(total)
	if frac < 0.55 || frac > 0.85 {
		t.Errorf("globaldns share = %.2f, want ~0.70", frac)
	}
}

// countryHubs recomputes the hub list generation used for a country spec.
func countryHubs(cs CountrySpec) []CitySpec {
	var hubs []CitySpec
	for _, ci := range cs.Cities {
		if ci.Hub {
			hubs = append(hubs, ci)
		}
	}
	if len(hubs) == 0 {
		hubs = cs.Cities[:1]
	}
	return hubs
}

// TestCatchmentsAreWide checks the quantized BGP-path model's core
// property: site choice is a function of (AS, provider, exit region), so
// a small (single-homed) AS lands every one of its public blocks with a
// given provider at exactly one site, and a large ISP's blocks that share
// an exit region share a site — wide catchments, not per-block noise.
func TestCatchmentsAreWide(t *testing.T) {
	type key struct {
		asn      uint32
		provider string
		cellLat  float64
		cellLon  float64
	}
	sites := map[key]*LDNS{}
	groups := 0
	for _, b := range testWorld.Blocks {
		if !b.LDNS.IsPublic() {
			continue
		}
		k := key{asn: b.AS.ASN, provider: b.LDNS.Provider}
		if b.AS.Large {
			hubs := countryHubs(b.Country.Spec)
			cell := quantizeCell(nearestHub(hubs, b.Loc).Loc)
			k.cellLat, k.cellLon = cell.Lat, cell.Lon
		}
		if prev, ok := sites[k]; ok {
			if prev != b.LDNS {
				t.Fatalf("AS %d (%s, large=%v) split across sites %s and %s within one catchment",
					b.AS.ASN, b.LDNS.Provider, b.AS.Large, prev.Site, b.LDNS.Site)
			}
		} else {
			sites[k] = b.LDNS
			groups++
		}
	}
	if groups == 0 {
		t.Fatal("no public catchment groups")
	}
}

// TestCatchmentMisrouteIsPerNetwork checks misrouting correlates by
// origin network: within a catchment either every block is at the
// region's nearest site or none is. (The whole-catchment invariant above
// already implies it; here we additionally require both populations to
// exist, i.e. some whole networks are systematically unlucky.)
func TestCatchmentMisrouteIsPerNetwork(t *testing.T) {
	nearest, misrouted := 0, 0
	for _, b := range testWorld.Blocks {
		if !b.LDNS.IsPublic() || b.AS.Large {
			continue
		}
		sites := testWorld.publicSites[b.LDNS.Provider]
		best := sites[0]
		for _, s := range sites[1:] {
			if geo.Distance(s.Loc, b.Loc) < geo.Distance(best.Loc, b.Loc) {
				best = s
			}
		}
		if best == b.LDNS {
			nearest++
		} else {
			misrouted++
		}
	}
	if nearest == 0 || misrouted == 0 {
		t.Fatalf("small-AS public blocks: nearest=%d misrouted=%d, want both populations",
			nearest, misrouted)
	}
}

// TestECSPolicyPrefixes pins the policy -> prefix resolution table.
func TestECSPolicyPrefixes(t *testing.T) {
	cases := []struct {
		name   string
		spec   ProviderSpec
		v4, v6 uint8
	}{
		{"default-on", ProviderSpec{SupportsECS: true}, 24, 48},
		{"default-off", ProviderSpec{}, 0, 0},
		{"full", ProviderSpec{ECS: ECSPolicy{Mode: ECSFull}}, 24, 48},
		{"truncated", ProviderSpec{ECS: ECSPolicy{Mode: ECSTruncated}}, 20, 56},
		{"truncated-custom", ProviderSpec{ECS: ECSPolicy{Mode: ECSTruncated, PrefixV4: 16, PrefixV6: 40}}, 16, 40},
		{"none-wins", ProviderSpec{SupportsECS: true, ECS: ECSPolicy{Mode: ECSNone}}, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v4, v6 := c.spec.ECSPrefixes()
			if v4 != c.v4 || v6 != c.v6 {
				t.Errorf("ECSPrefixes() = (%d, %d), want (%d, %d)", v4, v6, c.v4, c.v6)
			}
		})
	}
}

// TestModernProvidersWorld generates a world on the public-resolver era
// provider set and checks the per-site ECS policy threading: truncating
// providers stamp /20 (/56) on their sites, no-ECS providers produce
// public sites that do not support ECS at all.
func TestModernProvidersWorld(t *testing.T) {
	var share float64
	for _, p := range ModernProviders() {
		share += p.Share
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("modern provider shares sum to %v", share)
	}
	w := MustGenerate(Config{Seed: 3, NumBlocks: 3000, Providers: ModernProviders()})
	counts := map[string]int{}
	for _, l := range w.LDNSes {
		if !l.IsPublic() {
			if l.SupportsECS || l.ECSPrefixV4 != 0 {
				t.Fatalf("ISP LDNS %v carries public ECS policy", l.Addr)
			}
			continue
		}
		counts[l.Provider]++
		switch l.Provider {
		case "globaldns", "openresolve":
			if !l.SupportsECS || l.ECSPrefixV4 != 24 || l.ECSPrefixV6 != 48 {
				t.Fatalf("%s/%s: full provider site has prefixes (%d, %d)",
					l.Provider, l.Site, l.ECSPrefixV4, l.ECSPrefixV6)
			}
		case "quadtrunc":
			if !l.SupportsECS || l.ECSPrefixV4 != 20 || l.ECSPrefixV6 != 56 {
				t.Fatalf("%s/%s: truncating provider site has prefixes (%d, %d)",
					l.Provider, l.Site, l.ECSPrefixV4, l.ECSPrefixV6)
			}
		case "nullsubnet":
			if l.SupportsECS || l.ECSPrefixV4 != 0 || l.ECSPrefixV6 != 0 {
				t.Fatalf("%s/%s: no-ECS provider site claims ECS support", l.Provider, l.Site)
			}
		default:
			t.Fatalf("unexpected provider %q", l.Provider)
		}
	}
	for _, name := range []string{"globaldns", "quadtrunc", "nullsubnet", "openresolve"} {
		if counts[name] == 0 {
			t.Fatalf("provider %s has no sites in the world", name)
		}
	}
	// Demand flows to no-ECS sites too: the share draw is policy-blind.
	var null float64
	for _, b := range w.Blocks {
		if b.LDNS.IsPublic() && b.LDNS.Provider == "nullsubnet" {
			null += b.Demand
		}
	}
	if null == 0 {
		t.Fatal("no demand routed to the no-ECS provider")
	}
}

// TestECSModeString covers the mode name table.
func TestECSModeString(t *testing.T) {
	want := map[ECSMode]string{
		ECSDefault: "default", ECSFull: "full", ECSTruncated: "truncated", ECSNone: "none",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("mode %d stringifies to %q, want %q", m, m.String(), s)
		}
	}
	if ECSMode(99).String() != "unknown" {
		t.Error("invalid mode should stringify to unknown")
	}
}
