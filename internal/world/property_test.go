package world

import (
	"testing"
	"testing/quick"

	"eum/internal/geo"
)

// TestGenerateInvariantsAcrossConfigs property-checks the generator over
// random configurations: whatever the seed, size and IPv6 mix, the world
// must satisfy its structural invariants.
func TestGenerateInvariantsAcrossConfigs(t *testing.T) {
	f := func(seed int64, sizeRaw uint16, v6Raw uint8) bool {
		size := 200 + int(sizeRaw)%1500
		v6 := float64(v6Raw%50) / 100 // 0..0.49
		w, err := Generate(Config{Seed: seed, NumBlocks: size, IPv6Fraction: v6})
		if err != nil {
			t.Logf("Generate failed: %v", err)
			return false
		}
		// Demand normalised.
		if d := w.TotalDemand(); d < 0.999 || d > 1.001 {
			t.Logf("total demand %v", d)
			return false
		}
		// Every block well-formed and covered by exactly one of its AS's
		// announcements.
		for _, b := range w.Blocks {
			if b.LDNS == nil || !b.Loc.IsValid() || b.Demand <= 0 {
				t.Logf("malformed block %+v", b)
				return false
			}
			wantBits := 24
			if b.Prefix.Addr().Is6() {
				wantBits = 48
			}
			if b.Prefix.Bits() != wantBits {
				t.Logf("block %v has wrong leaf size", b.Prefix)
				return false
			}
			n := 0
			for _, c := range b.AS.CIDRs {
				if c.Contains(b.Prefix.Addr()) {
					n++
				}
			}
			if n != 1 {
				t.Logf("block %v covered %d times", b.Prefix, n)
				return false
			}
		}
		// Every LDNS's cluster demand equals the sum of its blocks.
		for _, l := range w.LDNSes {
			var sum float64
			for _, b := range l.Blocks {
				sum += b.Demand
				if b.LDNS != l {
					t.Logf("cluster membership inconsistent")
					return false
				}
			}
			if diff := l.Demand - sum; diff > 1e-9 || diff < -1e-9 {
				t.Logf("LDNS demand %v != cluster sum %v", l.Demand, sum)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 8} // each case generates a full world
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestDistancesFiniteAcrossSeeds property-checks that client-LDNS
// distances are always finite and within the half-circumference bound.
func TestDistancesFiniteAcrossSeeds(t *testing.T) {
	f := func(seed int64) bool {
		w, err := Generate(Config{Seed: seed, NumBlocks: 300})
		if err != nil {
			return false
		}
		limit := 3.15 * geo.EarthRadiusMiles // slightly above pi*R
		for _, b := range w.Blocks {
			d := b.ClientLDNSDistance()
			if d < 0 || d > limit {
				t.Logf("distance %v out of range", d)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}
