package world

import (
	"net/netip"
	"testing"
)

var v6World = MustGenerate(Config{Seed: 13, NumBlocks: 3000, IPv6Fraction: 0.25})

func TestIPv6FractionRealised(t *testing.T) {
	v6 := 0
	for _, b := range v6World.Blocks {
		if b.Prefix.Addr().Is6() {
			v6++
		}
	}
	frac := float64(v6) / float64(len(v6World.Blocks))
	if frac < 0.18 || frac > 0.32 {
		t.Errorf("v6 fraction = %.3f, want ~0.25", frac)
	}
}

func TestIPv6BlockShape(t *testing.T) {
	seen := map[netip.Prefix]bool{}
	for _, b := range v6World.Blocks {
		a := b.Prefix.Addr()
		if a.Is4() {
			if b.Prefix.Bits() != 24 {
				t.Fatalf("v4 block %v not a /24", b.Prefix)
			}
			continue
		}
		if b.Prefix.Bits() != 48 {
			t.Fatalf("v6 block %v not a /48", b.Prefix)
		}
		if seen[b.Prefix] {
			t.Fatalf("duplicate v6 prefix %v", b.Prefix)
		}
		seen[b.Prefix] = true
		if b.Prefix.Addr() != b.Prefix.Masked().Addr() {
			t.Fatalf("v6 block %v not canonical", b.Prefix)
		}
		// Inside the synthetic 2600::-style space.
		if b.Prefix.Addr().As16()[0] != 0x26 {
			t.Fatalf("v6 block %v outside allocation space", b.Prefix)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no v6 blocks generated")
	}
}

func TestIPv6CIDRCoverage(t *testing.T) {
	for _, as := range v6World.ASes {
		for _, b := range as.Blocks {
			n := 0
			for _, c := range as.CIDRs {
				if c.Contains(b.Prefix.Addr()) {
					n++
				}
			}
			if n != 1 {
				t.Fatalf("block %v covered by %d of its AS's CIDRs", b.Prefix, n)
			}
		}
	}
	// v6 aggregates must be /45../48 and canonical.
	for _, c := range v6World.BGPCIDRs() {
		if c.Addr().Is4() {
			continue
		}
		if c.Bits() < 45 || c.Bits() > 48 {
			t.Fatalf("v6 aggregate %v outside /45../48", c)
		}
	}
}

func TestIPv6DisabledByDefault(t *testing.T) {
	w := MustGenerate(Config{Seed: 14, NumBlocks: 500})
	for _, b := range w.Blocks {
		if b.Prefix.Addr().Is6() {
			t.Fatal("v6 block generated with IPv6Fraction=0")
		}
	}
}

func TestIPv6Deterministic(t *testing.T) {
	w1 := MustGenerate(Config{Seed: 15, NumBlocks: 600, IPv6Fraction: 0.3})
	w2 := MustGenerate(Config{Seed: 15, NumBlocks: 600, IPv6Fraction: 0.3})
	for i := range w1.Blocks {
		if w1.Blocks[i].Prefix != w2.Blocks[i].Prefix {
			t.Fatalf("block %d prefix differs", i)
		}
	}
}

func TestV6NetRoundTrip(t *testing.T) {
	for _, n := range []uint64{0, 1, 0x260000000000, 0xFFFFFFFFFFFF} {
		if got := v6NetOf(ipFromV6Net(n)); got != n {
			t.Errorf("v6 net round trip %x -> %x", n, got)
		}
	}
}
