package faultnet_test

import (
	"context"
	"net"
	"net/netip"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eum/internal/authority"
	"eum/internal/cdn"
	"eum/internal/dnsclient"
	"eum/internal/dnsmsg"
	"eum/internal/dnsserver"
	"eum/internal/faultnet"
	"eum/internal/mapmaker"
	"eum/internal/mapping"
	"eum/internal/netmodel"
	"eum/internal/world"
)

// combinedFaults fails a server when either injector does.
type combinedFaults struct{ a, b cdn.FaultInjector }

func (c combinedFaults) Failed(s *cdn.Server, now time.Time) bool {
	return c.a.Failed(s, now) || c.b.Failed(s, now)
}

// epochCheckHandler wraps the authority with the wire-level epoch
// invariant check. It is ShardAware so the sharded chaos variant routes
// through the per-shard answer caches like production does.
type epochCheckHandler struct {
	auth       *authority.Authority
	sys        *mapping.System
	violations *atomic.Uint64
}

func (h *epochCheckHandler) ServeDNS(remote netip.AddrPort, q *dnsmsg.Message) *dnsmsg.Message {
	return h.ServeDNSShard(0, remote, q)
}

func (h *epochCheckHandler) ServeDNSShard(shard int, remote netip.AddrPort, q *dnsmsg.Message) *dnsmsg.Message {
	lo := h.sys.Current().Epoch()
	resp := h.auth.ServeDNSShard(shard, remote, q)
	hi := h.sys.Current().Epoch()
	if resp == nil || resp.RCode != dnsmsg.RCodeSuccess {
		return resp
	}
	for _, rr := range resp.Additionals {
		txt, ok := rr.Data.(*dnsmsg.TXT)
		if !ok || len(txt.Strings) != 2 || txt.Strings[0] != "epoch" {
			continue
		}
		e, err := strconv.ParseUint(txt.Strings[1], 10, 64)
		if err != nil || e < lo || e > hi {
			h.violations.Add(1)
		}
	}
	return resp
}

// TestChaosServingPlane is the chaos harness: the full UDP stack — real
// sockets, pooled server, retrying client — under simultaneous
//
//   - transport faults: >=10% packet loss each way, duplication,
//     reordering, latency jitter (faultnet);
//   - server faults: a scheduled whole-deployment outage plus random
//     per-server failures, flap-damped health probing feeding the change
//     feed;
//   - control-plane churn: continuous MapMaker republishing every few
//     milliseconds with every 7th build panicking.
//
// It asserts the resilience contract end to end: at least 99% of lookups
// succeed, every answer's snapshot epoch was live at decision time (zero
// stale-epoch answers), and the MapMaker survived its build crashes.
//
// The sharded variant runs the same storm against a 4-shard server with
// per-shard answer caches, clients spread across the shards — the
// resilience contract must hold regardless of the serving-plane layout.
func TestChaosServingPlane(t *testing.T) {
	t.Run("pooled", func(t *testing.T) { runChaosServingPlane(t, 1) })
	t.Run("sharded-4", func(t *testing.T) { runChaosServingPlane(t, 4) })
}

func runChaosServingPlane(t *testing.T, shards int) {
	w := world.MustGenerate(world.Config{Seed: 7, NumBlocks: 400})
	p := cdn.MustGenerateUniverse(w, cdn.Config{Seed: 7, NumDeployments: 12, ServersPerDeployment: 4})
	sys := mapping.NewSystem(w, p, netmodel.NewDefault(),
		mapping.Config{Policy: mapping.EndUser, TTL: 2 * time.Second, PingTargets: 100})
	mm := mapmaker.New(sys, mapmaker.Config{Interval: time.Hour})

	auth, err := authority.New("cdn.example.net", sys)
	if err != nil {
		t.Fatal(err)
	}
	auth.SetEpochDebug(true)
	// Publishes run every few ms, so the watchdog stays fresh; it is armed
	// anyway so the degraded paths are live code under chaos.
	auth.SetDegradeConfig(authority.DegradeConfig{StaleAfter: 30 * time.Second})
	auth.SetShards(shards)

	// Health: deployment 0 scheduled hard-down for a window mid-test, every
	// server also failing randomly ~10% of 50ms epochs, flap-damped.
	start := time.Now()
	sched := &cdn.ScheduledFaults{}
	for _, srv := range p.Deployments[0].Servers {
		sched.Add(srv.ID, start.Add(300*time.Millisecond), start.Add(900*time.Millisecond))
	}
	rand := &cdn.RandomFaults{P: 0.1, EpochLength: 50 * time.Millisecond, Seed: 7}
	mon, err := cdn.NewMonitor(p, combinedFaults{sched, rand}, time.Millisecond, mm.OnDeploymentChange)
	if err != nil {
		t.Fatal(err)
	}
	mon.SetFlapThreshold(2)

	var epochViolations atomic.Uint64
	handler := &epochCheckHandler{auth: auth, sys: sys, violations: &epochViolations}

	// Transport: >=10% loss both directions, duplication, reordering,
	// latency jitter — on every server socket and every client socket.
	inj := faultnet.NewInjector(faultnet.Config{
		Seed: 7, DropProb: 0.10, DupProb: 0.05, ReorderProb: 0.10,
		ReorderDelay: 2 * time.Millisecond,
		Latency:      500 * time.Microsecond, Jitter: time.Millisecond,
	})
	conns := make([]net.PacketConn, shards)
	addrs := make([]string, shards)
	for i := range conns {
		inner, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = inj.WrapPacketConn(inner)
		addrs[i] = inner.LocalAddr().String()
	}
	srv, err := dnsserver.NewConns(conns, handler, dnsserver.Config{
		Readers: 2, Workers: 4, QueueDepth: 64,
		OnOverload:    dnsserver.ShedDrop,
		ServeDeadline: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()

	// Control-plane churn: republish every ~5ms, ticking health probes in
	// the same loop; every 7th build panics via the fault hook.
	churnStop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		builds := 0
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-churnStop:
				return
			case <-tick.C:
			}
			builds++
			if builds%7 == 0 {
				mm.SetBuildFault(func() { panic("chaos: build crash") })
			} else {
				mm.SetBuildFault(nil)
			}
			mon.Tick(time.Now())
			mm.Publish()
		}
	}()

	// Load: 8 resolvers x 100 ECS queries each, retrying with jittered
	// backoff through the lossy path, spread across the shards.
	const clients, perClient = 8, 100
	var failures, total atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := &dnsclient.Client{
				Timeout: 250 * time.Millisecond, Retries: 5,
				BackoffBase: 10 * time.Millisecond, BackoffMax: 100 * time.Millisecond,
				Seed:   uint64(g + 1),
				Dialer: inj.NewDialer(),
			}
			server := addrs[g%shards]
			for i := 0; i < perClient; i++ {
				total.Add(1)
				block := w.Blocks[(g*perClient+i*13)%len(w.Blocks)]
				resp, err := c.Lookup(context.Background(), server,
					"img.cdn.example.net", dnsmsg.TypeA, block.Prefix)
				if err != nil || resp.RCode != dnsmsg.RCodeSuccess || len(resp.Answers) == 0 {
					failures.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	close(churnStop)
	churn.Wait()
	if err := srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}

	success := 1 - float64(failures.Load())/float64(total.Load())
	t.Logf("chaos run: %d queries, %.2f%% success, %d failures", total.Load(), success*100, failures.Load())
	t.Logf("transport: forwarded=%d dropped=%d duplicated=%d delayed=%d",
		inj.Stats.Forwarded.Load(), inj.Stats.Dropped.Load(),
		inj.Stats.Duplicated.Load(), inj.Stats.Delayed.Load())
	t.Logf("server: queries=%d responses=%d shed=%d deadline_drops=%d rate_limited=%d panics=%d",
		srv.Metrics.Queries.Load(), srv.Metrics.Responses.Load(),
		srv.Metrics.Shed.Load(), srv.Metrics.DeadlineDrops.Load(),
		srv.Metrics.RateLimited.Load(), srv.Metrics.HandlerPanics.Load())
	t.Logf("authority: stale=%d fallback=%d servfails=%d stale_epoch=%d level=%v",
		auth.StaleAnswers.Load(), auth.FallbackAnswers.Load(),
		auth.DegradeServfails.Load(), auth.StaleEpochAnswers.Load(), auth.Degradation())
	t.Logf("mapmaker: published=%d build_failures=%d; health: probes=%d transitions=%d",
		mm.Published(), mm.BuildFailures(), mon.Probes(), mon.Transitions())

	if success < 0.99 {
		t.Errorf("success rate %.4f < 0.99", success)
	}
	if v := epochViolations.Load(); v != 0 {
		t.Errorf("%d answers carried an epoch outside their serve window", v)
	}
	if v := auth.StaleEpochAnswers.Load(); v != 0 {
		t.Errorf("StaleEpochAnswers = %d, want 0", v)
	}
	for _, st := range srv.ShardStats() {
		if st.Queries == 0 {
			t.Errorf("shard %d saw no queries — load not spread across shards", st.Shard)
		}
	}
	if mm.BuildFailures() == 0 {
		t.Error("no build failures injected — chaos hook not exercised")
	}
	if mm.Published() < 50 {
		t.Errorf("published only %d snapshots — map churn too slow", mm.Published())
	}
	if mon.Transitions() == 0 {
		t.Error("no health transitions — server faults not exercised")
	}
}
