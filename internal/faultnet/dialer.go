package faultnet

import (
	"context"
	"net"
	"time"
)

// Dialer hands out fault-injected client connections: UDP conns are
// wrapped with the injector, TCP conns pass through untouched (TCP's own
// retransmission hides packet faults from the application; injecting
// byte-stream faults would test the kernel, not the DNS stack). It
// implements dnsclient.ContextDialer.
type Dialer struct {
	in *Injector
	// Base performs the real dials; nil means a zero net.Dialer.
	Base *net.Dialer
}

// NewDialer builds a dialer drawing faults from in.
func (in *Injector) NewDialer() *Dialer { return &Dialer{in: in} }

// DialContext implements dnsclient.ContextDialer.
func (d *Dialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	if err := d.in.dialPartitioned(network, address); err != nil {
		return nil, err
	}
	base := d.Base
	if base == nil {
		base = &net.Dialer{}
	}
	conn, err := base.DialContext(ctx, network, address)
	if err != nil {
		return nil, err
	}
	switch network {
	case "udp", "udp4", "udp6":
		return &Conn{inner: conn, in: d.in}, nil
	}
	return conn, nil
}

// Conn is a fault-injecting net.Conn over a connected UDP socket.
type Conn struct {
	inner net.Conn
	in    *Injector
}

// Read delivers the next surviving inbound packet.
func (c *Conn) Read(p []byte) (int, error) {
	for {
		n, err := c.inner.Read(p)
		if err != nil {
			return n, err
		}
		if c.in.partitioned.Load() {
			c.in.Stats.PartitionDropped.Add(1)
			holdWhilePartitioned()
			continue
		}
		if c.in.rng.roll(c.in.cfg.DropProb) {
			c.in.Stats.Dropped.Add(1)
			continue
		}
		if c.in.rng.roll(c.in.cfg.TruncateProb) && n > c.in.cfg.TruncateBytes {
			n = c.in.cfg.TruncateBytes
			c.in.Stats.Truncated.Add(1)
		}
		c.in.Stats.Forwarded.Add(1)
		return n, nil
	}
}

// Write sends p subject to the injector's plan (drops still report
// success, as on a real lossy path).
func (c *Conn) Write(p []byte) (int, error) {
	if c.in.partitionDropSend() {
		return len(p), nil
	}
	plan := c.in.planSend()
	if plan.drop {
		c.in.Stats.Dropped.Add(1)
		return len(p), nil
	}
	wire := p
	if plan.truncate > 0 && len(wire) > plan.truncate {
		wire = wire[:plan.truncate]
		c.in.Stats.Truncated.Add(1)
	}
	writes := 1
	if plan.dup {
		writes = 2
		c.in.Stats.Duplicated.Add(1)
	}
	// Delayed client sends are written inline after sleeping: a stub
	// resolver blocks on its own query anyway, so holding the goroutine
	// models the latency without risking a write after Close.
	if plan.delay > 0 {
		c.in.Stats.Delayed.Add(1)
		time.Sleep(plan.delay)
	}
	for i := 0; i < writes; i++ {
		if _, err := c.inner.Write(wire); err != nil {
			return 0, err
		}
	}
	c.in.Stats.Forwarded.Add(1)
	return len(p), nil
}

func (c *Conn) Close() error                       { return c.inner.Close() }
func (c *Conn) LocalAddr() net.Addr                { return c.inner.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr               { return c.inner.RemoteAddr() }
func (c *Conn) SetDeadline(t time.Time) error      { return c.inner.SetDeadline(t) }
func (c *Conn) SetReadDeadline(t time.Time) error  { return c.inner.SetReadDeadline(t) }
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
