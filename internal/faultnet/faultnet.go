// Package faultnet wraps net transports with deterministic, seedable
// fault injection: packet drops, duplication, reordering, latency, and
// truncation. It exists so the DNS stack's resilience machinery — client
// retries and backoff, server shedding and deadlines, TCP fallback — can
// be exercised over a hostile wire inside ordinary Go tests, with failures
// reproducible from the seed.
//
// WrapPacketConn interposes on a server's net.PacketConn; Dialer hands a
// dnsclient fault-injected client connections. Both draw from one seeded
// splitmix64 stream, so a given (seed, traffic) pair makes the same
// drop/duplicate/delay decisions every run. Concurrency still interleaves
// goroutines differently run to run, but per-packet outcomes are a pure
// function of decision order, which keeps aggregate behaviour (loss rate,
// reorder rate) stable enough to assert against.
package faultnet

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"eum/internal/telemetry"
)

// Config sets fault probabilities and delays. Zero values inject nothing.
type Config struct {
	// Seed keys the decision stream; runs with equal seeds and equal
	// decision sequences behave identically.
	Seed uint64
	// DropProb is the probability a packet (either direction) vanishes.
	DropProb float64
	// DupProb is the probability a sent packet is delivered twice.
	DupProb float64
	// ReorderProb is the probability a sent packet is held back by
	// ReorderDelay, letting later packets overtake it.
	ReorderProb float64
	// ReorderDelay is how long held-back packets wait (default 2ms).
	ReorderDelay time.Duration
	// Latency delays every sent packet; Jitter adds a uniform random
	// extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// TruncateProb is the probability a packet is cut to TruncateBytes
	// (default 128) — modelling path-MTU mangling, which DNS must answer
	// with retries or TCP, never with a misparsed message.
	TruncateProb float64
	// TruncateBytes is the byte budget of a truncated packet.
	TruncateBytes int
}

func (c Config) withDefaults() Config {
	if c.ReorderDelay <= 0 {
		c.ReorderDelay = 2 * time.Millisecond
	}
	if c.TruncateBytes <= 0 {
		c.TruncateBytes = 128
	}
	return c
}

// Stats counts injected faults; read at any time.
type Stats struct {
	// Forwarded counts packets delivered unharmed (delays still count as
	// forwarded).
	Forwarded atomic.Uint64
	// Dropped counts packets deliberately lost.
	Dropped atomic.Uint64
	// Duplicated counts packets delivered twice.
	Duplicated atomic.Uint64
	// Delayed counts packets held for reordering or latency.
	Delayed atomic.Uint64
	// Truncated counts packets cut short.
	Truncated atomic.Uint64
	// PartitionDropped counts packets and dials refused while the
	// injector was partitioned (see Injector.SetPartitioned).
	PartitionDropped atomic.Uint64
}

// Register wires the fault counters into reg, prefixed (e.g. "faultnet"
// yields "faultnet_dropped_total"), so chaos harnesses can expose injected
// faults next to the serving-plane metrics they perturb.
func (s *Stats) Register(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"_forwarded_total",
		"Packets delivered unharmed.", s.Forwarded.Load)
	reg.Counter(prefix+"_dropped_total",
		"Packets deliberately lost.", s.Dropped.Load)
	reg.Counter(prefix+"_duplicated_total",
		"Packets delivered twice.", s.Duplicated.Load)
	reg.Counter(prefix+"_delayed_total",
		"Packets held for reordering or latency.", s.Delayed.Load)
	reg.Counter(prefix+"_truncated_total",
		"Packets cut short.", s.Truncated.Load)
	reg.Counter(prefix+"_partition_dropped_total",
		"Packets and dials refused while partitioned.", s.PartitionDropped.Load)
}

// rng is a locked splitmix64 stream shared by all wrappers of one config,
// so the fault sequence is one deterministic stream per seed.
type rng struct {
	mu sync.Mutex
	z  uint64
}

func (r *rng) next() uint64 {
	r.mu.Lock()
	r.z += 0x9e3779b97f4a7c15
	z := r.z
	r.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll returns true with probability p.
func (r *rng) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(r.next()>>11)/float64(1<<53) < p
}

// uniform returns a uniform duration in [0, d).
func (r *rng) uniform(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(float64(r.next()>>11) / float64(1<<53) * float64(d))
}

// Injector owns the shared decision stream and stats for a family of
// wrapped connections (typically one per test).
type Injector struct {
	cfg Config
	rng rng
	// partitioned, while set, makes every wrapped transport drop all
	// traffic and every dial fail (see SetPartitioned).
	partitioned atomic.Bool
	// Stats counts this injector's faults across all its connections.
	Stats Stats
}

// NewInjector builds an injector for cfg.
func NewInjector(cfg Config) *Injector {
	return &Injector{cfg: cfg.withDefaults(), rng: rng{z: cfg.Seed}}
}

// sendPlan is the fate the injector assigns an outgoing packet.
type sendPlan struct {
	drop     bool
	dup      bool
	truncate int // 0 = intact, else byte budget
	delay    time.Duration
}

func (in *Injector) planSend() sendPlan {
	var p sendPlan
	c := &in.cfg
	if in.rng.roll(c.DropProb) {
		p.drop = true
		return p
	}
	if in.rng.roll(c.TruncateProb) {
		p.truncate = c.TruncateBytes
	}
	p.delay = c.Latency + in.rng.uniform(c.Jitter)
	if in.rng.roll(c.ReorderProb) {
		p.delay += c.ReorderDelay
	}
	p.dup = in.rng.roll(c.DupProb)
	return p
}

// WrapPacketConn interposes the injector on a packet connection (the
// server side of the UDP stack).
func (in *Injector) WrapPacketConn(inner net.PacketConn) *PacketConn {
	return &PacketConn{inner: inner, in: in}
}

// PacketConn is a fault-injecting net.PacketConn.
type PacketConn struct {
	inner  net.PacketConn
	in     *Injector
	closed atomic.Bool
}

// ReadFrom delivers the next surviving inbound packet.
func (c *PacketConn) ReadFrom(p []byte) (int, net.Addr, error) {
	for {
		n, addr, err := c.inner.ReadFrom(p)
		if err != nil {
			return n, addr, err
		}
		if c.in.partitioned.Load() {
			c.in.Stats.PartitionDropped.Add(1)
			holdWhilePartitioned()
			continue
		}
		if c.in.rng.roll(c.in.cfg.DropProb) {
			c.in.Stats.Dropped.Add(1)
			continue
		}
		if c.in.rng.roll(c.in.cfg.TruncateProb) && n > c.in.cfg.TruncateBytes {
			n = c.in.cfg.TruncateBytes
			c.in.Stats.Truncated.Add(1)
		}
		c.in.Stats.Forwarded.Add(1)
		return n, addr, nil
	}
}

// WriteTo sends p subject to the injector's plan. Faults are invisible to
// the caller: a dropped packet still reports success, exactly like a real
// lossy network.
func (c *PacketConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	if c.in.partitionDropSend() {
		return len(p), nil
	}
	plan := c.in.planSend()
	if plan.drop {
		c.in.Stats.Dropped.Add(1)
		return len(p), nil
	}
	wire := p
	if plan.truncate > 0 && len(wire) > plan.truncate {
		wire = wire[:plan.truncate]
		c.in.Stats.Truncated.Add(1)
	}
	writes := 1
	if plan.dup {
		writes = 2
		c.in.Stats.Duplicated.Add(1)
	}
	if plan.delay > 0 {
		held := make([]byte, len(wire))
		copy(held, wire)
		c.in.Stats.Delayed.Add(1)
		for i := 0; i < writes; i++ {
			time.AfterFunc(plan.delay, func() {
				if !c.closed.Load() {
					_, _ = c.inner.WriteTo(held, addr)
				}
			})
		}
		c.in.Stats.Forwarded.Add(1)
		return len(p), nil
	}
	for i := 0; i < writes; i++ {
		if _, err := c.inner.WriteTo(wire, addr); err != nil {
			return 0, err
		}
	}
	c.in.Stats.Forwarded.Add(1)
	return len(p), nil
}

// Close closes the inner connection; packets still held for delay die
// with it.
func (c *PacketConn) Close() error {
	c.closed.Store(true)
	return c.inner.Close()
}

func (c *PacketConn) LocalAddr() net.Addr                { return c.inner.LocalAddr() }
func (c *PacketConn) SetDeadline(t time.Time) error      { return c.inner.SetDeadline(t) }
func (c *PacketConn) SetReadDeadline(t time.Time) error  { return c.inner.SetReadDeadline(t) }
func (c *PacketConn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
