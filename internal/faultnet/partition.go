package faultnet

import (
	"errors"
	"net"
	"time"
)

// ErrPartitioned is returned by dials attempted while the injector is
// partitioned.
var ErrPartitioned = errors.New("faultnet: network partitioned")

// SetPartitioned severs (or heals) every transport drawing from this
// injector: while partitioned, wrapped connections drop all traffic in
// both directions and the dialer refuses new connections. Unlike the
// probabilistic faults, a partition is total and deterministic — it is
// the chaos primitive for "the MapMaker is unreachable" scenarios, where
// replicas must keep serving and walk the degradation ladder on their
// own.
func (in *Injector) SetPartitioned(v bool) {
	in.partitioned.Store(v)
}

// Partitioned reports whether the injector is currently partitioned.
func (in *Injector) Partitioned() bool { return in.partitioned.Load() }

// partitionDropSend implements the send-side partition check shared by
// PacketConn.WriteTo and Conn.Write.
func (in *Injector) partitionDropSend() bool {
	if !in.partitioned.Load() {
		return false
	}
	in.Stats.PartitionDropped.Add(1)
	return true
}

// dialPartitioned reports whether a dial must be refused, mirroring a
// connect that can never complete across the cut.
func (in *Injector) dialPartitioned(network, address string) error {
	if !in.partitioned.Load() {
		return nil
	}
	in.Stats.PartitionDropped.Add(1)
	return &net.OpError{Op: "dial", Net: network,
		Addr: strAddr{network, address}, Err: ErrPartitioned}
}

// strAddr is a minimal net.Addr for dial errors.
type strAddr struct{ net, addr string }

func (a strAddr) Network() string { return a.net }
func (a strAddr) String() string  { return a.addr }

// holdWhilePartitioned makes a blocked read behave like a dead wire
// instead of a tight poll loop: inbound packets arriving during the
// partition are consumed and dropped by the read loops, and this small
// sleep keeps those loops from spinning when traffic is heavy.
func holdWhilePartitioned() { time.Sleep(time.Millisecond) }
