package faultnet

import (
	"context"
	"net"
	"net/netip"
	"testing"
	"time"

	"eum/internal/dnsclient"
	"eum/internal/dnsmsg"
	"eum/internal/dnsserver"
)

func TestDeterministicDecisions(t *testing.T) {
	fates := func(seed uint64) []sendPlan {
		in := NewInjector(Config{
			Seed: seed, DropProb: 0.3, DupProb: 0.2, ReorderProb: 0.2,
			TruncateProb: 0.1, Latency: time.Millisecond, Jitter: time.Millisecond,
		})
		out := make([]sendPlan, 200)
		for i := range out {
			out[i] = in.planSend()
		}
		return out
	}
	a, b := fates(99), fates(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := fates(100)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical fault streams")
	}
}

func TestDropRateApproximatesConfig(t *testing.T) {
	in := NewInjector(Config{Seed: 3, DropProb: 0.25})
	drops := 0
	n := 10000
	for i := 0; i < n; i++ {
		if in.planSend().drop {
			drops++
		}
	}
	got := float64(drops) / float64(n)
	if got < 0.22 || got > 0.28 {
		t.Fatalf("drop rate = %.3f, want ~0.25", got)
	}
}

func TestPacketConnInjectsDrops(t *testing.T) {
	inner, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(Config{Seed: 5, DropProb: 0.5})
	pc := in.WrapPacketConn(inner)
	defer pc.Close()

	sender, err := net.Dial("udp", inner.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	const sent = 200
	for i := 0; i < sent; i++ {
		if _, err := sender.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	received := 0
	buf := make([]byte, 16)
	for {
		_ = pc.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		if _, _, err := pc.ReadFrom(buf); err != nil {
			break
		}
		received++
	}
	if received == 0 || received >= sent {
		t.Fatalf("received %d of %d under 50%% loss", received, sent)
	}
	if in.Stats.Dropped.Load() == 0 {
		t.Fatal("no drops counted")
	}
	if got := received + int(in.Stats.Dropped.Load()); got != sent {
		t.Fatalf("received %d + dropped %d != sent %d", received, in.Stats.Dropped.Load(), sent)
	}
}

// TestEndToEndThroughFaults runs the real UDP server and client across a
// moderately lossy injected path: retries with backoff must still land
// every lookup.
func TestEndToEndThroughFaults(t *testing.T) {
	h := dnsserver.HandlerFunc(func(_ netip.AddrPort, q *dnsmsg.Message) *dnsmsg.Message {
		r := q.Reply()
		r.Answers = append(r.Answers, dnsmsg.RR{
			Name: q.Questions[0].Name, Class: dnsmsg.ClassINET, TTL: 30,
			Data: &dnsmsg.A{Addr: netip.MustParseAddr("192.0.2.1")},
		})
		return r
	})

	in := NewInjector(Config{
		Seed: 11, DropProb: 0.15, DupProb: 0.05, ReorderProb: 0.1,
		Latency: time.Millisecond, Jitter: 2 * time.Millisecond,
	})
	inner, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s, err := dnsserver.NewConn(in.WrapPacketConn(inner), h, dnsserver.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve() }()
	t.Cleanup(func() { _ = s.Close() })

	c := &dnsclient.Client{
		Timeout: 150 * time.Millisecond, Retries: 6,
		BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
		Seed:   11,
		Dialer: in.NewDialer(),
	}
	for i := 0; i < 20; i++ {
		resp, err := c.Lookup(context.Background(), inner.LocalAddr().String(),
			"fault.example.net", dnsmsg.TypeA, netip.Prefix{})
		if err != nil {
			t.Fatalf("lookup %d failed through 15%% loss: %v", i, err)
		}
		if len(resp.Answers) != 1 {
			t.Fatalf("lookup %d: answers = %d", i, len(resp.Answers))
		}
	}
	if in.Stats.Dropped.Load() == 0 {
		t.Fatal("fault path saw no drops — injector not in the loop?")
	}
}
