package faultnet_test

import (
	"context"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eum/internal/authority"
	"eum/internal/cdn"
	"eum/internal/dnsclient"
	"eum/internal/dnsmsg"
	"eum/internal/dnsserver"
	"eum/internal/faultnet"
	"eum/internal/mapmaker"
	"eum/internal/mapping"
	"eum/internal/netmodel"
	"eum/internal/world"
)

// TestLoadChaos is the load-feedback chaos drill: the full UDP serving
// stack with the closed feedback loop live — per-answer demand
// accounting, EWMA load monitor, load-aware map rebuilds — under
//
//   - a regional flash crowd (the middle phase hammers one country's
//     blocks),
//   - a deployment brownout (the hottest deployment drops to 15%
//     capacity mid-surge, then recovers),
//   - >=10% packet loss with duplication and reordering on every socket,
//   - continuous map churn (a publish every few milliseconds).
//
// The resilience contract: at least 99% of lookups still succeed, the
// monitor never violates its own damping window (zero oscillation-window
// violations), the loop demonstrably engaged (threshold crossings
// happened), and when the load feed is killed at the end the builder
// degrades to proximity-only scoring via the stale-signal tripwire
// instead of acting on dead gauges — while queries keep succeeding.
func TestLoadChaos(t *testing.T) {
	w := world.MustGenerate(world.Config{Seed: 11, NumBlocks: 400})
	p := cdn.MustGenerateUniverse(w, cdn.Config{Seed: 11, NumDeployments: 12, ServersPerDeployment: 4})
	sys := mapping.NewSystem(w, p, netmodel.NewDefault(), mapping.Config{
		Policy: mapping.EndUser, TTL: 500 * time.Millisecond, PingTargets: 100,
		BalanceFactor: 2,
	})
	mm := mapmaker.New(sys, mapmaker.Config{Interval: time.Hour})
	lm := mapmaker.NewLoadMonitor(mm, mapmaker.LoadSignalConfig{
		EnterUtil:  0.8,
		Hysteresis: 0.3,
		EWMA:       150 * time.Millisecond,
		// Aggressive republish cadence so the loop reacts within the
		// test's short phases; the window-violation tripwire still must
		// hold at any cadence.
		MinRepublish: 50 * time.Millisecond,
		MaxSignalAge: 400 * time.Millisecond,
	})
	sys.SetUtilizationSource(lm)

	auth, err := authority.New("cdn.example.net", sys)
	if err != nil {
		t.Fatal(err)
	}
	// Close the loop through the real answer path: every cache-miss answer
	// records one demand unit against the deployment it handed out.
	auth.SetAnswerDemand(1)

	// Transport: >=10% loss both directions, duplication, reordering.
	inj := faultnet.NewInjector(faultnet.Config{
		Seed: 11, DropProb: 0.10, DupProb: 0.05, ReorderProb: 0.10,
		ReorderDelay: 2 * time.Millisecond,
		Latency:      500 * time.Microsecond, Jitter: time.Millisecond,
	})
	inner, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := inner.LocalAddr().String()
	srv, err := dnsserver.NewConns([]net.PacketConn{inj.WrapPacketConn(inner)}, auth, dnsserver.Config{
		Readers: 2, Workers: 4, QueueDepth: 64,
		OnOverload:    dnsserver.ShedDrop,
		ServeDeadline: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	defer srv.Close()

	// Map churn: a publish every 5ms for the whole run. Each build reads
	// the monitor's smoothed gauges, so load-aware rebuilds and the stale
	// fence both run constantly under fire.
	churnStop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-churnStop:
				return
			case <-tick.C:
				mm.Publish()
			}
		}
	}()
	defer func() {
		close(churnStop)
		churn.Wait()
	}()

	// The feedback loop's sampling goroutine, as cmd/eumdns runs it: decay
	// the cumulative demand counters toward a rate, then sample.
	tickStop := make(chan struct{})
	var ticker sync.WaitGroup
	ticker.Add(1)
	go func() {
		defer ticker.Done()
		const every = 10 * time.Millisecond
		decay := math.Exp(-float64(every) / float64(lm.Config().EWMA))
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-tickStop:
				return
			case now := <-tick.C:
				p.ScaleLoad(decay)
				lm.Tick(p, now)
			}
		}
	}()

	// lookupBurst fires clients*perClient ECS lookups drawn from blocks,
	// retrying through the lossy path, and tallies failures.
	var failures, total atomic.Uint64
	lookupBurst := func(clients, perClient int, blocks []*world.ClientBlock) {
		var wg sync.WaitGroup
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				c := &dnsclient.Client{
					Timeout: 250 * time.Millisecond, Retries: 5,
					BackoffBase: 10 * time.Millisecond, BackoffMax: 100 * time.Millisecond,
					Seed:   uint64(g + 1),
					Dialer: inj.NewDialer(),
				}
				for i := 0; i < perClient; i++ {
					total.Add(1)
					block := blocks[(g*perClient+i*13)%len(blocks)]
					resp, err := c.Lookup(context.Background(), addr,
						"img.cdn.example.net", dnsmsg.TypeA, block.Prefix)
					if err != nil || resp.RCode != dnsmsg.RCodeSuccess || len(resp.Answers) == 0 {
						failures.Add(1)
					}
				}
			}(g)
		}
		wg.Wait()
	}

	// Phase A — baseline: global traffic warms the caches and the demand
	// gauges.
	lookupBurst(4, 50, w.Blocks)

	// Phase B — flash crowd + brownout: the country with the most blocks
	// surges, and mid-surge the currently hottest deployment browns out to
	// 15% capacity.
	var surge *world.Country
	for _, c := range w.Countries {
		if surge == nil || len(c.Blocks) > len(surge.Blocks) {
			surge = c
		}
	}
	var hot *cdn.Deployment
	for _, d := range p.Deployments {
		if hot == nil || d.Load() > hot.Load() {
			hot = d
		}
	}
	hot.SetCapacityFactor(0.15)
	lookupBurst(8, 60, surge.Blocks)
	hot.SetCapacityFactor(1)

	// Phase C — kill the load feed: stop the sampling goroutine and let
	// every gauge age past MaxSignalAge while churn keeps rebuilding. The
	// builder must fall back to proximity-only scoring (tripwire counts
	// up) and serving must not degrade.
	close(tickStop)
	ticker.Wait()
	time.Sleep(lm.Config().MaxSignalAge + 200*time.Millisecond)
	staleBefore := lm.StaleSignals()
	lookupBurst(4, 50, w.Blocks)
	// One more churn interval so at least one build definitely ran after
	// the burst began.
	time.Sleep(20 * time.Millisecond)

	success := 1 - float64(failures.Load())/float64(total.Load())
	loadRebuilds, builderStale := sys.Builder().LoadStats()
	t.Logf("load chaos: %d queries, %.2f%% success, %d failures", total.Load(), success*100, failures.Load())
	t.Logf("monitor: notifies=%d damped=%d crossings=%d window_violations=%d overloaded=%d",
		lm.Notifies(), lm.Damped(), lm.Crossings(), lm.WindowViolations(), lm.Overloaded())
	t.Logf("builder: load_rebuilds=%d stale_signals=%d (monitor tripwire %d); published=%d",
		loadRebuilds, builderStale, lm.StaleSignals(), mm.Published())
	t.Logf("transport: forwarded=%d dropped=%d duplicated=%d",
		inj.Stats.Forwarded.Load(), inj.Stats.Dropped.Load(), inj.Stats.Duplicated.Load())

	if success < 0.99 {
		t.Errorf("success rate %.4f < 0.99", success)
	}
	if v := lm.WindowViolations(); v != 0 {
		t.Errorf("window violations = %d, want 0 (notification outside the damping window)", v)
	}
	if lm.Crossings() == 0 {
		t.Error("no overload crossings — the feedback loop never engaged")
	}
	if lm.Notifies() == 0 {
		t.Error("no load notifies reached the change feed")
	}
	if lm.StaleSignals() <= staleBefore {
		t.Errorf("stale-signal tripwire did not advance after the feed died (%d -> %d)",
			staleBefore, lm.StaleSignals())
	}
	if mm.Published() < 50 {
		t.Errorf("published only %d snapshots — map churn too slow", mm.Published())
	}
	// Oscillation guard: a surge-and-recede plus one brownout gives each
	// deployment a handful of overload transitions, not dozens. The bound
	// is loose because wall-clock timing under load varies, but it fails
	// loudly if the loop thrashes every tick.
	for _, d := range p.Deployments {
		if f := lm.Flips(d.ID); f > 20 {
			t.Errorf("deployment %s flipped overload state %d times — oscillating", d.Name, f)
		}
	}
}
