package bench

import (
	"encoding/json"
	"net/netip"
	"os"
	"testing"

	"eum/internal/authority"
	"eum/internal/cdn"
	"eum/internal/dnsmsg"
	"eum/internal/mapping"
	"eum/internal/netmodel"
	"eum/internal/telemetry"
	"eum/internal/world"
)

// TestServeDNSAllocGuard pins the authority hot path to the per-query
// allocation budget recorded in BENCH_map.json (hot_path_guard): a change
// that adds even one allocation per query fails here instead of silently
// eroding the PR 1 numbers. The authority runs with telemetry fully
// registered — the observability plane must ride along for free.
func TestServeDNSAllocGuard(t *testing.T) {
	data, err := os.ReadFile("BENCH_map.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Benchmarks struct {
			Guard struct {
				ServeDNS struct {
					AllocsPerOp float64 `json:"allocs_per_op"`
				} `json:"BenchmarkAuthorityServeDNS"`
			} `json:"hot_path_guard"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	budget := doc.Benchmarks.Guard.ServeDNS.AllocsPerOp
	if budget <= 0 {
		t.Fatal("BENCH_map.json carries no BenchmarkAuthorityServeDNS allocs_per_op budget")
	}

	w := world.MustGenerate(world.Config{Seed: 5, NumBlocks: 2000})
	platform := cdn.MustGenerateUniverse(w, cdn.Config{Seed: 5, NumDeployments: 120})
	sys := mapping.NewSystem(w, platform, netmodel.NewDefault(), mapping.Config{
		Policy: mapping.EndUser, PingTargets: 200,
	})
	auth, err := authority.New("cdn.example.net", sys)
	if err != nil {
		t.Fatal(err)
	}
	auth.RegisterMetrics(telemetry.NewRegistry())

	blk := w.Blocks[0]
	q := dnsmsg.NewQuery(7, "img.cdn.example.net", dnsmsg.TypeA)
	_ = q.SetClientSubnet(blk.Prefix.Addr(), 24)
	remote := netip.AddrPortFrom(blk.LDNS.Addr, 53)

	allocs := testing.AllocsPerRun(200, func() {
		if resp := auth.ServeDNS(remote, q); resp == nil || resp.RCode != dnsmsg.RCodeSuccess {
			t.Fatal("bad response")
		}
	})
	if allocs > budget {
		t.Errorf("ServeDNS with telemetry = %.1f allocs/op, budget %.0f (BENCH_map.json hot_path_guard)",
			allocs, budget)
	}

	// The sharded dispatch path must hold the same budget: selecting a
	// per-shard cache is an index, not an allocation.
	auth.SetShards(4)
	allocs = testing.AllocsPerRun(200, func() {
		if resp := auth.ServeDNSShard(3, remote, q); resp == nil || resp.RCode != dnsmsg.RCodeSuccess {
			t.Fatal("bad sharded response")
		}
	})
	if allocs > budget {
		t.Errorf("ServeDNSShard(3) with telemetry = %.1f allocs/op, budget %.0f (per-shard caches must be free)",
			allocs, budget)
	}
}
