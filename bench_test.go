// Package bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks: `go test -bench=. -benchmem` prints each
// figure's headline numbers as custom benchmark metrics, so the whole
// evaluation reproduces in one command.
//
// Scale: benches default to the Small lab (seconds). Set EUM_BENCH_SCALE=full
// for the benchmark-quality numbers recorded in EXPERIMENTS.md.
package bench

import (
	"context"
	"net"
	"net/netip"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eum/internal/authority"
	"eum/internal/cdn"
	"eum/internal/dnsclient"
	"eum/internal/dnsmsg"
	"eum/internal/dnsserver"
	"eum/internal/experiments"
	"eum/internal/geo"
	"eum/internal/mapmaker"
	"eum/internal/mapping"
	"eum/internal/mapwire"
	"eum/internal/par"
	"eum/internal/resolver"
	"eum/internal/simulation"
	"eum/internal/telemetry"
	"eum/internal/world"
)

var (
	labOnce sync.Once
	lab     *experiments.Lab
	scale   experiments.Scale

	// The million-block Huge lab is built once, only by the benchmarks
	// that need it (BenchmarkSnapshotScale) — never by benchLab.
	hugeLabOnce sync.Once
	hugeLab     *experiments.Lab
)

func benchLab(b *testing.B) *experiments.Lab {
	b.Helper()
	labOnce.Do(func() {
		scale = experiments.Small
		if os.Getenv("EUM_BENCH_SCALE") == "full" {
			scale = experiments.Full
		}
		lab = experiments.NewLab(scale, 1)
	})
	return lab
}

// --- Section 3: clients and their name servers ---

func BenchmarkFig05ClientLDNSHistogram(b *testing.B) {
	l := benchLab(b)
	var median float64
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig05ClientLDNSHistogram(l)
		median = res.Median
	}
	b.ReportMetric(median, "median-mi")
}

func BenchmarkFig06DistanceByCountry(b *testing.B) {
	l := benchLab(b)
	var topMedian float64
	for i := 0; i < b.N; i++ {
		boxes, _ := experiments.Fig06DistanceByCountry(l)
		topMedian = boxes[0].Box.P50
	}
	b.ReportMetric(topMedian, "top-country-median-mi")
}

func BenchmarkFig07PublicResolverHistogram(b *testing.B) {
	l := benchLab(b)
	var median float64
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig07PublicResolverHistogram(l)
		median = res.Median
	}
	b.ReportMetric(median, "public-median-mi")
}

func BenchmarkFig08PublicByCountry(b *testing.B) {
	l := benchLab(b)
	var arMedian float64
	for i := 0; i < b.N; i++ {
		boxes, _ := experiments.Fig08PublicByCountry(l)
		for _, bx := range boxes {
			if bx.Country == "AR" {
				arMedian = bx.Box.P50
			}
		}
	}
	b.ReportMetric(arMedian, "AR-median-mi")
}

func BenchmarkFig09PublicAdoption(b *testing.B) {
	l := benchLab(b)
	var vn float64
	for i := 0; i < b.N; i++ {
		adoption, _ := experiments.Fig09PublicAdoption(l)
		vn = adoption["VN"]
	}
	b.ReportMetric(100*vn, "VN-adoption-pct")
}

func BenchmarkFig10DistanceByASSize(b *testing.B) {
	l := benchLab(b)
	var buckets []experiments.ASSizeBucket
	for i := 0; i < b.N; i++ {
		buckets, _ = experiments.Fig10DistanceByASSize(l)
	}
	if len(buckets) > 0 {
		b.ReportMetric(buckets[0].MedianDistance, "smallest-AS-median-mi")
	}
}

func BenchmarkFig11ClusterRadius(b *testing.B) {
	l := benchLab(b)
	var res *experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		res, _ = experiments.Fig11ClusterRadius(l)
	}
	b.ReportMetric(res.PubRadiusP99, "public-radius-p99-mi")
	b.ReportMetric(100*res.PubMeanExceed, "mean>radius-pct")
}

// --- Section 4: the roll-out (Figs 12-20) ---

var (
	rolloutOnce sync.Once
	rolloutFigs *experiments.RolloutFigures
	rolloutErr  error
)

func benchRollout(b *testing.B) *experiments.RolloutFigures {
	b.Helper()
	l := benchLab(b)
	rolloutOnce.Do(func() {
		rolloutFigs, rolloutErr = experiments.RunRolloutFigures(l, scale)
	})
	if rolloutErr != nil {
		b.Fatal(rolloutErr)
	}
	return rolloutFigs
}

func BenchmarkFig12RUMVolume(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rf := benchRollout(b)
		rows = len(rf.Fig12RUMVolume().Rows)
	}
	b.ReportMetric(float64(rows), "months")
}

// rolloutRatio reports before/after means for one metric group.
func rolloutRatio(b *testing.B, pick func(*simulation.RolloutResult) *simulation.GroupSeries, metric string) {
	b.Helper()
	var before, after float64
	for i := 0; i < b.N; i++ {
		rf := benchRollout(b)
		bd, ad := simulation.BeforeAfter(pick(rf.Result), true, rf.Result)
		before, after = bd.Mean(), ad.Mean()
	}
	b.ReportMetric(before, "high-before-"+metric)
	b.ReportMetric(after, "high-after-"+metric)
	b.ReportMetric(before/after, "improvement-x")
}

func BenchmarkFig13MappingDistanceTimeline(b *testing.B) {
	rolloutRatio(b, func(r *simulation.RolloutResult) *simulation.GroupSeries { return &r.MappingDistance }, "mi")
}

func BenchmarkFig14MappingDistanceCDF(b *testing.B) {
	var p90before, p90after float64
	for i := 0; i < b.N; i++ {
		rf := benchRollout(b)
		bd, ad := simulation.BeforeAfter(&rf.Result.MappingDistance, true, rf.Result)
		p90before, p90after = bd.Percentile(90), ad.Percentile(90)
	}
	b.ReportMetric(p90before, "p90-before-mi")
	b.ReportMetric(p90after, "p90-after-mi")
}

func BenchmarkFig15RTTTimeline(b *testing.B) {
	rolloutRatio(b, func(r *simulation.RolloutResult) *simulation.GroupSeries { return &r.RTT }, "ms")
}

func BenchmarkFig16RTTCDF(b *testing.B) {
	var p75before, p75after float64
	for i := 0; i < b.N; i++ {
		rf := benchRollout(b)
		bd, ad := simulation.BeforeAfter(&rf.Result.RTT, true, rf.Result)
		p75before, p75after = bd.Percentile(75), ad.Percentile(75)
	}
	b.ReportMetric(p75before, "p75-before-ms")
	b.ReportMetric(p75after, "p75-after-ms")
}

func BenchmarkFig17TTFBTimeline(b *testing.B) {
	rolloutRatio(b, func(r *simulation.RolloutResult) *simulation.GroupSeries { return &r.TTFB }, "ms")
}

func BenchmarkFig18TTFBCDF(b *testing.B) {
	var p75before, p75after float64
	for i := 0; i < b.N; i++ {
		rf := benchRollout(b)
		bd, ad := simulation.BeforeAfter(&rf.Result.TTFB, true, rf.Result)
		p75before, p75after = bd.Percentile(75), ad.Percentile(75)
	}
	b.ReportMetric(p75before, "p75-before-ms")
	b.ReportMetric(p75after, "p75-after-ms")
}

func BenchmarkFig19DownloadTimeline(b *testing.B) {
	rolloutRatio(b, func(r *simulation.RolloutResult) *simulation.GroupSeries { return &r.Download }, "ms")
}

func BenchmarkFig20DownloadCDF(b *testing.B) {
	var p75before, p75after float64
	for i := 0; i < b.N; i++ {
		rf := benchRollout(b)
		bd, ad := simulation.BeforeAfter(&rf.Result.Download, true, rf.Result)
		p75before, p75after = bd.Percentile(75), ad.Percentile(75)
	}
	b.ReportMetric(p75before, "p75-before-ms")
	b.ReportMetric(p75after, "p75-after-ms")
}

// --- Sections 1 and 5: scale (Figs 2, 21-24) ---

func BenchmarkFig02QueryVolume(b *testing.B) {
	l := benchLab(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.Fig02QueryVolume(l, scale)
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		ratio = last.ClientQPS / last.AuthQPS
	}
	b.ReportMetric(ratio, "client:dns-ratio")
}

func BenchmarkFig21MappingUnitCoverage(b *testing.B) {
	l := benchLab(b)
	var res *experiments.Fig21Result
	for i := 0; i < b.N; i++ {
		res, _ = experiments.Fig21MappingUnitCoverage(l)
	}
	b.ReportMetric(float64(res.Blocks95), "blocks-95pct")
	b.ReportMetric(float64(res.LDNS95), "ldns-95pct")
}

func BenchmarkFig22PrefixTradeoff(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.Fig22Row
	for i := 0; i < b.N; i++ {
		rows, _ = experiments.Fig22PrefixTradeoff(l)
	}
	for _, r := range rows {
		if r.PrefixBits == 20 {
			b.ReportMetric(float64(r.Units), "units-slash20")
			b.ReportMetric(100*r.Within100mi, "pct-compact-slash20")
		}
	}
}

func BenchmarkFig23QueryRateIncrease(b *testing.B) {
	l := benchLab(b)
	var factor float64
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.Fig23QueryRateIncrease(l, scale)
		if err != nil {
			b.Fatal(err)
		}
		pre, post := pts[4], pts[len(pts)-1]
		factor = post.PublicAuthQPS / pre.PublicAuthQPS
	}
	b.ReportMetric(factor, "public-query-factor-x")
}

func BenchmarkFig24PopularityFactor(b *testing.B) {
	l := benchLab(b)
	var top float64
	for i := 0; i < b.N; i++ {
		buckets, _, err := experiments.Fig24PopularityFactor(l, scale)
		if err != nil {
			b.Fatal(err)
		}
		top = buckets[len(buckets)-1].FactorIncrease
	}
	b.ReportMetric(top, "top-bucket-factor-x")
}

// --- Section 6: deployments (Fig 25) ---

func BenchmarkFig25DeploymentSweep(b *testing.B) {
	l := benchLab(b)
	cfg := experiments.DefaultFig25Config(scale)
	var pts []experiments.Fig25Point
	for i := 0; i < b.N; i++ {
		pts, _ = experiments.Fig25DeploymentSweep(l, cfg)
	}
	// Report the largest-N cells: NS vs EU P99.
	maxN := cfg.Ns[len(cfg.Ns)-1]
	for _, p := range pts {
		if p.Deployments != maxN {
			continue
		}
		switch p.Policy {
		case mapping.NSBased:
			b.ReportMetric(p.P99Ms, "NS-p99-ms")
		case mapping.EndUser:
			b.ReportMetric(p.P99Ms, "EU-p99-ms")
		case mapping.ClientAwareNS:
			b.ReportMetric(p.P99Ms, "CANS-p99-ms")
		}
	}
}

func BenchmarkAdoptionExtrapolation(b *testing.B) {
	l := benchLab(b)
	var farGain float64
	for i := 0; i < b.N; i++ {
		bands, _ := experiments.AdoptionExtrapolation(l)
		farGain = bands[0].PredictedRTTGain
	}
	b.ReportMetric(100*farGain, "far-band-rtt-gain-pct")
}

func BenchmarkBaselineMechanisms(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.BaselineRow
	for i := 0; i < b.N; i++ {
		rows, _ = experiments.BaselineMechanisms(l)
	}
	for _, r := range rows {
		if r.SizeBytes == 100_000 {
			switch r.Mechanism.String() {
			case "ecs":
				b.ReportMetric(r.MeanTotalMs, "ecs-100KB-ms")
			case "http-redirect":
				b.ReportMetric(r.MeanTotalMs, "redirect-100KB-ms")
			}
		}
	}
}

func BenchmarkFlashCrowd(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.FlashCrowdRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.FlashCrowd(l, "DE")
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(100*last.SpillFraction, "spill-pct-at-4x")
	b.ReportMetric(last.P95Distance, "p95-dist-mi-at-4x")
}

func BenchmarkPathStability(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.StabilityRow
	for i := 0; i < b.N; i++ {
		rows, _ = experiments.PathStability(l)
	}
	b.ReportMetric(rows[0].MeanASCrossings, "NS-as-crossings")
	b.ReportMetric(rows[1].MeanASCrossings, "EU-as-crossings")
}

// --- Ablations (DESIGN.md design choices) ---

// BenchmarkAblationSweepInterval quantifies measurement freshness: fresher
// sweeps buy lower realized latency at more probe cost.
func BenchmarkAblationSweepInterval(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.FreshnessRow
	for i := 0; i < b.N; i++ {
		rows, _ = experiments.MeasurementFreshness(l, scale)
	}
	b.ReportMetric(rows[0].MeanRealizedMs, "daily-sweep-ms")
	b.ReportMetric(rows[len(rows)-1].MeanRealizedMs, "monthly-sweep-ms")
}

// BenchmarkAblationScopePrefix compares EU mapping accuracy at /24 vs /20
// mapping units: coarser units cost a little accuracy for 3-4x fewer units.
func BenchmarkAblationScopePrefix(b *testing.B) {
	l := benchLab(b)
	for _, bits := range []uint8{24, 20, 16} {
		b.Run(prefixName(bits), func(b *testing.B) {
			sys := mapping.NewSystem(l.World, l.Platform, l.Net, mapping.Config{
				Policy: mapping.EndUser, Units: mapping.PrefixUnits{X: bits}, PingTargets: 800,
			})
			var meanDist float64
			for i := 0; i < b.N; i++ {
				meanDist = euMeanMappingDistance(b, l, sys, 400)
			}
			b.ReportMetric(meanDist, "mean-mapping-distance-mi")
			b.ReportMetric(float64(mapping.CountUnits(l.World, mapping.PrefixUnits{X: bits})), "units")
		})
	}
}

func prefixName(bits uint8) string {
	return map[uint8]string{24: "slash24", 20: "slash20", 16: "slash16"}[bits]
}

// BenchmarkAblationCIDRAggregation compares /24 units against BGP-CIDR
// aggregated units (§5.1's 3.76M -> 444K reduction).
func BenchmarkAblationCIDRAggregation(b *testing.B) {
	l := benchLab(b)
	cidrUnits := mapping.NewCIDRUnits(mapping.PrefixUnits{X: 24}, l.World.BGPCIDRs())
	for _, tc := range []struct {
		name  string
		units mapping.UnitPolicy
	}{
		{"plain24", mapping.PrefixUnits{X: 24}},
		{"bgp-cidr", cidrUnits},
	} {
		b.Run(tc.name, func(b *testing.B) {
			sys := mapping.NewSystem(l.World, l.Platform, l.Net, mapping.Config{
				Policy: mapping.EndUser, Units: tc.units, PingTargets: 800,
			})
			var meanDist float64
			for i := 0; i < b.N; i++ {
				meanDist = euMeanMappingDistance(b, l, sys, 400)
			}
			b.ReportMetric(meanDist, "mean-mapping-distance-mi")
			b.ReportMetric(float64(mapping.CountUnits(l.World, tc.units)), "units")
		})
	}
}

// euMeanMappingDistance maps n public-resolver blocks and returns their
// demand-weighted mean client-deployment distance.
func euMeanMappingDistance(b *testing.B, l *experiments.Lab, sys *mapping.System, n int) float64 {
	b.Helper()
	var sum, wsum float64
	count := 0
	for _, blk := range l.World.Blocks {
		if !blk.LDNS.IsPublic() {
			continue
		}
		if count++; count > n {
			break
		}
		resp, err := sys.Map(mapping.Request{Domain: "a.net", LDNS: blk.LDNS.Addr, ClientSubnet: blk.Prefix})
		if err != nil {
			b.Fatal(err)
		}
		sum += blk.Demand * distMi(blk, resp)
		wsum += blk.Demand
	}
	return sum / wsum
}

func distMi(blk *world.ClientBlock, resp *mapping.Response) float64 {
	return geo.Distance(blk.Loc, resp.Deployment.Loc)
}

// BenchmarkAblationLocalLB compares consistent-hash local load balancing
// against the spread a random pick would produce: the same domain must
// concentrate on few servers for cache locality.
func BenchmarkAblationLocalLB(b *testing.B) {
	l := benchLab(b)
	lb := mapping.NewLoadBalancer()
	dep := l.Platform.Deployments[0]
	domains := make([]string, 64)
	for i := range domains {
		domains[i] = "site-" + string(rune('a'+i%26)) + string(rune('0'+i/26)) + ".net"
	}
	var distinct int
	for i := 0; i < b.N; i++ {
		seen := map[uint64]bool{}
		for rep := 0; rep < 50; rep++ {
			for _, d := range domains {
				servers, err := lb.PickServers(dep, d, 0)
				if err != nil {
					b.Fatal(err)
				}
				seen[servers[0].ID] = true
			}
		}
		distinct = len(seen)
	}
	// With consistent hashing, 50 repetitions add no new servers: the
	// distinct-server count equals one pass's.
	b.ReportMetric(float64(distinct), "distinct-primaries-64-domains")
}

// BenchmarkAblationLoadAwareLB compares hard capacity spill against
// load-aware balancing under a 0.7x regional surge: hard spill pegs the
// best clusters to 100% while others idle; the penalty spreads the load
// earlier, at a small mean-distance cost.
func BenchmarkAblationLoadAwareLB(b *testing.B) {
	l := benchLab(b)
	for _, tc := range []struct {
		name    string
		penalty float64
	}{{"hard-spill", 0}, {"load-aware", 4}} {
		b.Run(tc.name, func(b *testing.B) {
			var pegged, meanDist float64
			for i := 0; i < b.N; i++ {
				pegged, meanDist = surgeRun(b, l, tc.penalty)
			}
			b.ReportMetric(pegged, "pegged-deployments")
			b.ReportMetric(meanDist, "mean-dist-mi")
		})
	}
}

// surgeRun drives a 0.7x-capacity surge in Germany and reports how many
// deployments ended above 95% utilisation and the mean mapping distance.
func surgeRun(b *testing.B, l *experiments.Lab, penalty float64) (pegged, meanDist float64) {
	b.Helper()
	l.Platform.ResetLoad()
	defer l.Platform.ResetLoad()
	sys := mapping.NewSystem(l.World, l.Platform, l.Net, mapping.Config{
		Policy: mapping.EndUser, PingTargets: 800, LoadPenalty: penalty,
	})
	var localCap float64
	for _, d := range l.Platform.Deployments {
		if d.Country == "DE" {
			localCap += d.Capacity()
		}
	}
	var blocks []*world.ClientBlock
	var regionDemand float64
	for _, c := range l.World.Countries {
		if c.Code() == "DE" {
			blocks = c.Blocks
		}
	}
	for _, blk := range blocks {
		regionDemand += blk.Demand
	}
	scale := 0.7 * localCap / regionDemand
	// Issue the surge in unit-sized requests, as the real system would see
	// it: many clients, each a small share.
	const quantum = 0.5
	var distSum, w float64
	for _, blk := range blocks {
		remaining := blk.Demand * scale
		for remaining > 0 {
			d := quantum
			if remaining < quantum {
				d = remaining
			}
			remaining -= d
			r, err := sys.Map(mapping.Request{Domain: "surge.net", LDNS: blk.LDNS.Addr,
				ClientSubnet: blk.Prefix, Demand: d})
			if err != nil {
				b.Fatal(err)
			}
			distSum += d * geo.Distance(blk.Loc, r.Deployment.Loc)
			w += d
		}
	}
	for _, d := range l.Platform.Deployments {
		if cap := d.Capacity(); cap > 0 && d.Load()/cap > 0.95 {
			pegged++
		}
	}
	return pegged, distSum / w
}

// BenchmarkGeoErrorImpact quantifies EU mapping sensitivity to
// geolocation error.
func BenchmarkGeoErrorImpact(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.GeoErrorRow
	for i := 0; i < b.N; i++ {
		rows, _ = experiments.GeoErrorImpact(l)
	}
	b.ReportMetric(rows[0].MeanRTTMs, "clean-rtt-ms")
	b.ReportMetric(rows[len(rows)-1].MeanRTTMs, "worst-geoerr-rtt-ms")
}

// BenchmarkBroadRollout runs the §8 adoption what-if.
func BenchmarkBroadRollout(b *testing.B) {
	l := benchLab(b)
	var res *simulation.BroadRolloutResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunBroadRollout(l.World, l.Platform, l.Net, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, st := range res.Stages {
		switch st.Name {
		case "public-only":
			b.ReportMetric(st.MeanRTTMs, "public-only-rtt-ms")
		case "universal":
			b.ReportMetric(st.MeanRTTMs, "universal-rtt-ms")
			b.ReportMetric(st.AuthQueryMultiplier, "universal-query-x")
		}
	}
}

// BenchmarkOverlayBenefit quantifies origin-fetch acceleration.
func BenchmarkOverlayBenefit(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.OverlayRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.OverlayBenefit(l)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].RelayedPct, "relayed-pct")
	b.ReportMetric(rows[0].RelayedImprovementPct, "relayed-improvement-pct")
}

// BenchmarkAblationTrafficClass compares the per-class scoring functions.
func BenchmarkAblationTrafficClass(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.TrafficClassRow
	for i := 0; i < b.N; i++ {
		rows, _ = experiments.TrafficClasses(l)
	}
	for _, r := range rows {
		switch r.Class {
		case mapping.ClassWeb:
			b.ReportMetric(r.MeanPingMs, "web-ping-ms")
		case mapping.ClassVideo:
			b.ReportMetric(r.MeanThroughput, "video-throughput-mbps")
		case mapping.ClassApplication:
			b.ReportMetric(r.MeanLossPct, "app-loss-pct")
		}
	}
}

// --- Parallel simulation engine (internal/par) ---

// workerSettings runs the body at one worker and at all cores; the pairing
// both measures the fan-out speedup and exercises the determinism contract
// (results must be identical at any setting — see the parallel_test.go
// invariance tests).
func workerSettings(b *testing.B, body func(b *testing.B)) {
	b.Helper()
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			par.SetWorkers(tc.workers)
			defer par.SetWorkers(0)
			body(b)
		})
	}
}

// BenchmarkWorldGenerate measures full-world generation (per-country
// fan-out plus the serial renumbering pass).
func BenchmarkWorldGenerate(b *testing.B) {
	workerSettings(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w := world.MustGenerate(world.Config{Seed: 3, NumBlocks: 20000, IPv6Fraction: 0.15})
			if len(w.Blocks) == 0 {
				b.Fatal("empty world")
			}
		}
	})
}

// BenchmarkRolloutTimeline measures the §4 roll-out simulation (day-sharded
// fan-out).
func BenchmarkRolloutTimeline(b *testing.B) {
	l := benchLab(b)
	cfg := simulation.DefaultRolloutConfig()
	cfg.Start = time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)
	cfg.End = time.Date(2014, 5, 10, 0, 0, 0, 0, time.UTC)
	cfg.DailyMeasurements = 150
	workerSettings(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := simulation.RunRollout(l.World, l.Platform, l.Net, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig25Sweep measures the §6 deployment sweep ((run, N) cells
// fanned out, block sweeps sharded inside each cell).
func BenchmarkFig25Sweep(b *testing.B) {
	l := benchLab(b)
	cfg := experiments.DefaultFig25Config(scale)
	workerSettings(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pts, _ := experiments.Fig25DeploymentSweep(l, cfg)
			if len(pts) == 0 {
				b.Fatal("empty sweep")
			}
		}
	})
}

// --- Control plane / data plane (internal/mapmaker; BENCH_map.json) ---

// BenchmarkSnapshotSwap measures the control plane's publish latency: one
// full pipeline pass (snapshot build + atomic install). "warm" reuses the
// scorer's cached rank tables — the health/policy/periodic republish case;
// "measurement" invalidates them first, so every table recomputes — the
// sweep-refresh case.
func BenchmarkSnapshotSwap(b *testing.B) {
	l := benchLab(b)
	sys := mapping.NewSystem(l.World, l.Platform, l.Net, mapping.Config{
		Policy: mapping.EndUser, PingTargets: 800,
	})
	mm := mapmaker.New(sys, mapmaker.Config{})
	mapSize := func(b *testing.B) {
		sn := sys.Current()
		b.ReportMetric(float64(len(l.World.Blocks)), "blocks")
		b.ReportMetric(float64(sn.Partitions()), "partitions")
		b.ReportMetric(float64(sn.Tables()), "tables")
	}
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mm.Publish()
		}
		mapSize(b)
	})
	b.Run("measurement", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mm.Notify(mapmaker.ReasonMeasurement)
			mm.Sync()
		}
		mapSize(b)
	})
}

// BenchmarkSnapshotScale measures the mapping plane at the million-block
// Huge lab (see EXPERIMENTS.md "Huge lab"): a cold full rebuild of every
// interned rank table, a warm republish (nothing dirty — the arena is
// shared wholesale), and a one-ping-target incremental republish that
// re-ranks only the tables the dirty target serves. resident_memory
// reports bytes of mapping state per client block. Numbers are recorded
// in BENCH_scale.json.
func BenchmarkSnapshotScale(b *testing.B) {
	hugeLabOnce.Do(func() { hugeLab = experiments.NewLab(experiments.Huge, 1) })
	l := hugeLab
	cfg := experiments.DefaultScaleConfig(experiments.Huge)
	sys := mapping.NewSystem(l.World, l.Platform, l.Net, mapping.Config{
		Policy:         mapping.EndUser,
		PingTargets:    cfg.PingTargets,
		PartitionMiles: cfg.PartitionMiles,
	})
	bld := sys.Builder()
	sn := sys.Current()
	mapSize := func(b *testing.B) {
		b.ReportMetric(float64(len(l.World.Blocks)), "blocks")
		b.ReportMetric(float64(sn.Partitions()), "partitions")
		b.ReportMetric(float64(sn.Tables()), "tables")
	}
	b.Run("full_build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bld.MarkMeasurementsDirty() // invalidate every cached table
			sn = sys.Rebuild()
		}
		mapSize(b)
	})
	b.Run("warm_republish", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sn = sys.Rebuild()
		}
		mapSize(b)
	})
	target, ok := sys.Scorer().TargetFor(l.World.LDNSes[0].Endpoint())
	if !ok {
		b.Fatal("clustering off")
	}
	b.Run("incremental_one_target", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bld.MarkMeasurementsDirty(target.ID)
			sn = sys.Rebuild()
		}
		mapSize(b)
	})
	b.Run("resident_memory", func(b *testing.B) {
		var bytes uint64
		for i := 0; i < b.N; i++ {
			bytes = sn.MemoryBytes() + sys.IndexBytes()
		}
		b.ReportMetric(float64(bytes)/float64(len(l.World.Blocks)), "bytes/block")
		b.ReportMetric(float64(sn.MemoryBytes()), "snapshot_bytes")
		b.ReportMetric(float64(sys.IndexBytes()), "index_bytes")
	})
}

// BenchmarkSnapshotWire measures the distribution plane's codec at the
// million-block Huge lab: encoding the full wire image a replica
// bootstraps from, decoding it back into a servable snapshot, and the
// delta a one-ping-target measurement refresh ships between epochs.
// full_bytes/delta_bytes report the wire sizes and delta_pct their ratio
// — the bench also enforces the distribution plane's scaling guarantee
// that a one-target change ships under 10% of the full image (numbers
// recorded in BENCH_wire.json).
func BenchmarkSnapshotWire(b *testing.B) {
	hugeLabOnce.Do(func() { hugeLab = experiments.NewLab(experiments.Huge, 1) })
	l := hugeLab
	cfg := experiments.DefaultScaleConfig(experiments.Huge)
	sys := mapping.NewSystem(l.World, l.Platform, l.Net, mapping.Config{
		Policy:         mapping.EndUser,
		PingTargets:    cfg.PingTargets,
		PartitionMiles: cfg.PartitionMiles,
	})
	codec := mapwire.NewCodec(l.Platform)
	prev := sys.Current()
	full, err := codec.EncodeFull(prev)
	if err != nil {
		b.Fatal(err)
	}
	target, ok := sys.Scorer().TargetFor(l.World.LDNSes[0].Endpoint())
	if !ok {
		b.Fatal("clustering off")
	}
	sys.Builder().MarkMeasurementsDirty(target.ID)
	next := sys.Rebuild()
	delta, ok, err := codec.EncodeDelta(prev, next)
	if err != nil || !ok {
		b.Fatalf("EncodeDelta: ok=%v err=%v", ok, err)
	}
	if 10*len(delta) >= len(full) {
		b.Fatalf("one-target delta %d bytes is not <10%% of the %d-byte full image", len(delta), len(full))
	}
	wireSize := func(b *testing.B) {
		b.ReportMetric(float64(len(full)), "full_bytes")
		b.ReportMetric(float64(len(delta)), "delta_bytes")
		b.ReportMetric(100*float64(len(delta))/float64(len(full)), "delta_pct")
	}
	b.Run("encode_full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := codec.EncodeFull(prev); err != nil {
				b.Fatal(err)
			}
		}
		wireSize(b)
	})
	b.Run("decode_full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := codec.Decode(full, nil); err != nil {
				b.Fatal(err)
			}
		}
		wireSize(b)
	})
	b.Run("encode_delta", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok, err := codec.EncodeDelta(prev, next); err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
		wireSize(b)
	})
	base, err := codec.Decode(full, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("apply_delta", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := codec.Decode(delta, base); err != nil {
				b.Fatal(err)
			}
		}
		wireSize(b)
	})
}

// BenchmarkServingUnderMapChurn compares the two architectures for serving
// queries while the map changes underneath. "snapshot-swap" is the current
// design: a background MapMaker republishes complete snapshots and the
// query path only loads the installed pointer. "generation-invalidation"
// emulates the pre-split design: every change drops the scorer's cached
// rank tables, and the query path re-ranks lazily against the platform on
// the first miss. Both paths end in the same load-balancer picks, so the
// difference is purely who pays for a map change — the control plane
// (bounded, off the query path) or the queries that hit cold caches. The
// mean barely moves (recomputes amortise); the worst-op metric is the
// point: an unlucky query on the lazy path absorbs a full platform
// re-rank, while on the snapshot path no query ever computes anything.
func BenchmarkServingUnderMapChurn(b *testing.B) {
	l := benchLab(b)
	const churnEvery = 5 * time.Millisecond

	// A spread of client blocks so the query stream touches many rank
	// tables, as a real server's mix of resolvers does.
	blocks := make([]*world.ClientBlock, 0, 64)
	for i := 0; i < 64; i++ {
		blocks = append(blocks, l.World.Blocks[(i*131)%len(l.World.Blocks)])
	}

	churn := func(change func()) (stop func()) {
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(churnEvery)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					change()
				}
			}
		}()
		return func() { close(done); wg.Wait() }
	}

	// recordMax tracks the slowest single query across all workers.
	recordMax := func(m *atomic.Int64, ns int64) {
		for {
			cur := m.Load()
			if ns <= cur || m.CompareAndSwap(cur, ns) {
				return
			}
		}
	}

	b.Run("snapshot-swap", func(b *testing.B) {
		sys := mapping.NewSystem(l.World, l.Platform, l.Net, mapping.Config{
			Policy: mapping.EndUser, PingTargets: 800,
		})
		mm := mapmaker.New(sys, mapmaker.Config{})
		stop := churn(func() { mm.Publish() })
		defer stop()
		var maxNs atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				blk := blocks[i%len(blocks)]
				i++
				req := mapping.Request{Domain: "churn.net", LDNS: blk.LDNS.Addr, ClientSubnet: blk.Prefix}
				start := time.Now()
				if _, err := sys.Map(req); err != nil {
					b.Error(err)
					return
				}
				recordMax(&maxNs, time.Since(start).Nanoseconds())
			}
		})
		b.ReportMetric(float64(maxNs.Load()), "worst-op-ns")
	})

	b.Run("generation-invalidation", func(b *testing.B) {
		sc := mapping.NewScorer(l.World, l.Platform, l.Net, 800)
		lb := mapping.NewLoadBalancer()
		stop := churn(func() { sc.Invalidate() })
		defer stop()
		var maxNs atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				blk := blocks[i%len(blocks)]
				i++
				start := time.Now()
				d, err := lb.PickDeployment(sc.Rank(blk.Endpoint()), 0)
				if err != nil {
					b.Error(err)
					return
				}
				if _, err := lb.PickServers(d, "churn.net", 0); err != nil {
					b.Error(err)
					return
				}
				recordMax(&maxNs, time.Since(start).Nanoseconds())
			}
		})
		b.ReportMetric(float64(maxNs.Load()), "worst-op-ns")
	})
}

// --- Micro-benchmarks of the hot paths ---

func BenchmarkDNSMessagePack(b *testing.B) {
	q := dnsmsg.NewQuery(1, "e0042.b.cdn.example.net", dnsmsg.TypeA)
	_ = q.SetClientSubnet(netip.MustParseAddr("203.0.113.5"), 24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := q.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNSMessageUnpack(b *testing.B) {
	q := dnsmsg.NewQuery(1, "e0042.b.cdn.example.net", dnsmsg.TypeA)
	_ = q.SetClientSubnet(netip.MustParseAddr("203.0.113.5"), 24)
	wire, err := q.Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dnsmsg.Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMappingMap(b *testing.B) {
	l := benchLab(b)
	sys := mapping.NewSystem(l.World, l.Platform, l.Net, mapping.Config{
		Policy: mapping.EndUser, PingTargets: 800,
	})
	blk := l.World.Blocks[0]
	req := mapping.Request{Domain: "bench.net", LDNS: blk.LDNS.Addr, ClientSubnet: blk.Prefix}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Map(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResolverQueryCacheHit(b *testing.B) {
	l := benchLab(b)
	sys := mapping.NewSystem(l.World, l.Platform, l.Net, mapping.Config{
		Policy: mapping.EndUser, PingTargets: 400,
	})
	r, err := resolver.New(resolver.Config{
		Addr: netip.MustParseAddr("198.51.100.1"), ECSEnabled: true, SourcePrefix: 24,
	}, &resolver.SystemUpstream{System: sys})
	if err != nil {
		b.Fatal(err)
	}
	now := time.Date(2014, 4, 20, 0, 0, 0, 0, time.UTC)
	client := l.World.Blocks[0].Prefix.Addr()
	if _, err := r.Query(now, "bench.net", client); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Query(now, "bench.net", client); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAuthorityServeDNS(b *testing.B) {
	l := benchLab(b)
	sys := mapping.NewSystem(l.World, l.Platform, l.Net, mapping.Config{
		Policy: mapping.EndUser, PingTargets: 400,
	})
	auth, err := authority.New("cdn.example.net", sys)
	if err != nil {
		b.Fatal(err)
	}
	// Telemetry is part of the measured configuration: the budget in
	// BENCH_map.json holds with the decision-latency histogram armed.
	auth.RegisterMetrics(telemetry.NewRegistry())
	blk := l.World.Blocks[0]
	q := dnsmsg.NewQuery(7, "img.cdn.example.net", dnsmsg.TypeA)
	_ = q.SetClientSubnet(blk.Prefix.Addr(), 24)
	remote := netip.AddrPortFrom(blk.LDNS.Addr, 53)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := auth.ServeDNS(remote, q); resp == nil || resp.RCode != dnsmsg.RCodeSuccess {
			b.Fatal("bad response")
		}
	}
}

// BenchmarkAuthorityServeDNSNoCache is the same query stream with the
// answer cache disabled — isolates the mapping-path improvements from the
// cache's short-circuit.
func BenchmarkAuthorityServeDNSNoCache(b *testing.B) {
	l := benchLab(b)
	sys := mapping.NewSystem(l.World, l.Platform, l.Net, mapping.Config{
		Policy: mapping.EndUser, PingTargets: 400,
	})
	auth, err := authority.New("cdn.example.net", sys)
	if err != nil {
		b.Fatal(err)
	}
	auth.DisableAnswerCache()
	blk := l.World.Blocks[0]
	q := dnsmsg.NewQuery(7, "img.cdn.example.net", dnsmsg.TypeA)
	_ = q.SetClientSubnet(blk.Prefix.Addr(), 24)
	remote := netip.AddrPortFrom(blk.LDNS.Addr, 53)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := auth.ServeDNS(remote, q); resp == nil || resp.RCode != dnsmsg.RCodeSuccess {
			b.Fatal("bad response")
		}
	}
}

// BenchmarkShardedThroughput sweeps the sharded serving plane over
// listener-shard counts (SO_REUSEPORT sockets) and syscall batch sizes
// (recvmmsg/sendmmsg), with per-shard authority answer caches, under the
// same parallel ping-pong clients as BenchmarkServerThroughput. Beside the
// qps metric it reports pkts-per-wakeup — packets delivered per receive
// syscall return, summed over shards — which is the direct evidence the
// batched path amortises syscalls (1.0 on the single-packet path).
// Non-default shard/batch settings are linux-only and skipped elsewhere.
func BenchmarkShardedThroughput(b *testing.B) {
	l := benchLab(b)
	sys := mapping.NewSystem(l.World, l.Platform, l.Net, mapping.Config{
		Policy: mapping.EndUser, PingTargets: 400,
	})
	auth, err := authority.New("cdn.example.net", sys)
	if err != nil {
		b.Fatal(err)
	}
	blk := l.World.Blocks[0]

	for _, shards := range []int{1, 2, 4, 8} {
		for _, batch := range []int{1, 32} {
			name := "shards-" + strconv.Itoa(shards) + "/batch-" + strconv.Itoa(batch)
			b.Run(name, func(b *testing.B) {
				if (shards > 1 || batch > 1) && runtime.GOOS != "linux" {
					b.Skip("SO_REUSEPORT sharding and batched I/O are linux-only")
				}
				srv, err := dnsserver.ListenConfig("127.0.0.1:0", auth,
					dnsserver.Config{ListenerShards: shards, BatchSize: batch})
				if err != nil {
					b.Fatal(err)
				}
				auth.SetShards(srv.Shards())
				go func() { _ = srv.Serve() }()
				defer srv.Close()
				addr := srv.Addr().String()

				b.SetParallelism(8)
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					conn, err := net.Dial("udp", addr)
					if err != nil {
						b.Error(err)
						return
					}
					defer conn.Close()
					_ = conn.SetDeadline(time.Now().Add(5 * time.Minute))
					q := dnsmsg.NewQuery(9, "img.cdn.example.net", dnsmsg.TypeA)
					_ = q.SetClientSubnet(blk.Prefix.Addr(), 24)
					wire, err := q.Pack()
					if err != nil {
						b.Error(err)
						return
					}
					buf := make([]byte, 4096)
					for pb.Next() {
						if _, err := conn.Write(wire); err != nil {
							b.Error(err)
							return
						}
						n, err := conn.Read(buf)
						if err != nil {
							b.Error(err)
							return
						}
						if n < 12 || buf[0] != wire[0] || buf[1] != wire[1] {
							b.Error("short or mismatched response")
							return
						}
					}
				})
				b.StopTimer()
				var wakeups, packets uint64
				for _, st := range srv.ShardStats() {
					wakeups += st.Wakeups
					packets += st.BatchedPackets
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
				if wakeups > 0 {
					b.ReportMetric(float64(packets)/float64(wakeups), "pkts-per-wakeup")
				}
			})
		}
	}
}

// BenchmarkEndToEndUDP measures the full stack over a loopback socket:
// client -> UDP -> authoritative handler -> mapping -> UDP -> client.
func BenchmarkEndToEndUDP(b *testing.B) {
	l := benchLab(b)
	sys := mapping.NewSystem(l.World, l.Platform, l.Net, mapping.Config{
		Policy: mapping.EndUser, PingTargets: 400,
	})
	auth, err := authority.New("cdn.example.net", sys)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := dnsserver.Listen("127.0.0.1:0", auth)
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	defer srv.Close()

	blk := l.World.Blocks[0]
	c := &dnsclient.Client{Timeout: 2 * time.Second}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Lookup(ctx, srv.Addr().String(), "img.cdn.example.net", dnsmsg.TypeA, blk.Prefix); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerThroughput compares the server's two dispatch modes under
// parallel client load: the legacy goroutine-per-packet loop against the
// pooled reader/worker loop. Each parallel client owns a UDP socket and
// plays query-response ping-pong; the qps metric is the aggregate rate.
func BenchmarkServerThroughput(b *testing.B) {
	l := benchLab(b)
	sys := mapping.NewSystem(l.World, l.Platform, l.Net, mapping.Config{
		Policy: mapping.EndUser, PingTargets: 400,
	})
	auth, err := authority.New("cdn.example.net", sys)
	if err != nil {
		b.Fatal(err)
	}
	blk := l.World.Blocks[0]

	for _, tc := range []struct {
		name string
		cfg  dnsserver.Config
	}{
		{"goroutine-per-packet", dnsserver.Config{GoroutinePerPacket: true}},
		{"pooled", dnsserver.Config{}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			srv, err := dnsserver.ListenConfig("127.0.0.1:0", auth, tc.cfg)
			if err != nil {
				b.Fatal(err)
			}
			go func() { _ = srv.Serve() }()
			defer srv.Close()
			addr := srv.Addr().String()

			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				conn, err := net.Dial("udp", addr)
				if err != nil {
					b.Error(err)
					return
				}
				defer conn.Close()
				_ = conn.SetDeadline(time.Now().Add(5 * time.Minute))
				q := dnsmsg.NewQuery(9, "img.cdn.example.net", dnsmsg.TypeA)
				_ = q.SetClientSubnet(blk.Prefix.Addr(), 24)
				wire, err := q.Pack()
				if err != nil {
					b.Error(err)
					return
				}
				buf := make([]byte, 4096)
				for pb.Next() {
					if _, err := conn.Write(wire); err != nil {
						b.Error(err)
						return
					}
					n, err := conn.Read(buf)
					if err != nil {
						b.Error(err)
						return
					}
					if n < 12 || buf[0] != wire[0] || buf[1] != wire[1] {
						b.Error("short or mismatched response")
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
		})
	}
}

// benchUtil is a controllable UtilizationSource for the load-republish
// benchmark: fixed per-deployment readings, always fresh.
type benchUtil struct{ u map[uint64]float64 }

func (s benchUtil) Utilization(d *cdn.Deployment) (float64, bool) { return s.u[d.ID], true }

// BenchmarkLoadRepublish measures what the load-feedback loop adds to
// republish latency at the million-block Huge lab. beta0_warm is the
// proximity-only warm republish (the same path BenchmarkSnapshotScale's
// warm_republish records — beta=0 must stay within noise of it).
// beta2_warm arms load scoring with every gauge idle: the captured
// utilization vector is all zeros, so the build skips the re-rank and
// shares the arena wholesale. beta2_load_republish is the ReasonLoad
// path — one deployment's smoothed utilization moves by a visible step
// each build, so every rank table re-sorts against the new vector; this
// is the cost of one feedback-loop republish under overload. Numbers are
// recorded in BENCH_load.json.
func BenchmarkLoadRepublish(b *testing.B) {
	hugeLabOnce.Do(func() { hugeLab = experiments.NewLab(experiments.Huge, 1) })
	l := hugeLab
	cfg := experiments.DefaultScaleConfig(experiments.Huge)
	newSys := func(beta float64) *mapping.System {
		return mapping.NewSystem(l.World, l.Platform, l.Net, mapping.Config{
			Policy:         mapping.EndUser,
			PingTargets:    cfg.PingTargets,
			PartitionMiles: cfg.PartitionMiles,
			BalanceFactor:  beta,
		})
	}

	b.Run("beta0_warm", func(b *testing.B) {
		sys := newSys(0)
		sys.Rebuild()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Rebuild()
		}
	})

	b.Run("beta2_warm", func(b *testing.B) {
		sys := newSys(2)
		sys.SetUtilizationSource(benchUtil{u: map[uint64]float64{}})
		sys.Rebuild()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Rebuild()
		}
		if lr, _ := sys.Builder().LoadStats(); lr != 0 {
			b.Fatalf("idle gauges forced %d load re-ranks; warm path lost", lr)
		}
	})

	b.Run("beta2_load_republish", func(b *testing.B) {
		sys := newSys(2)
		src := benchUtil{u: map[uint64]float64{}}
		sys.SetUtilizationSource(src)
		hot := l.Platform.Deployments[0]
		sys.Rebuild()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Alternate the hot deployment's reading so the quantized
			// vector changes on every build — each iteration pays a full
			// load re-rank, as a threshold-crossing republish would.
			src.u[hot.ID] = 0.5 + 0.5*float64(i%2)
			sys.Builder().MarkLoadDirty()
			sys.Rebuild()
		}
		if lr, _ := sys.Builder().LoadStats(); lr == 0 {
			b.Fatal("no load re-ranks recorded; the load path did not run")
		}
	})
}
