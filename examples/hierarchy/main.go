// Hierarchy runs the paper's Figure 3 name-server architecture end to end
// on loopback sockets: a top-level authority hosting a customer CNAME and
// delegating the content zone to two low-level name-server sites, plus an
// iterative resolver that chases the CNAME and follows the referral —
// printing every step of the resolution.
//
//	go run ./examples/hierarchy
//
// Note: the low-level sites bind 127.0.0.2 and 127.0.0.3; on systems
// without a full 127/8 loopback (macOS by default), add the aliases first.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/netip"
	"strconv"
	"time"

	"eum/internal/authority"
	"eum/internal/cdn"
	"eum/internal/dnsclient"
	"eum/internal/dnsmsg"
	"eum/internal/dnsserver"
	"eum/internal/mapping"
	"eum/internal/netmodel"
	"eum/internal/world"
)

func main() {
	w := world.MustGenerate(world.Config{Seed: 4, NumBlocks: 4000})
	platform := cdn.MustGenerateUniverse(w, cdn.Config{Seed: 4, NumDeployments: 300})
	system := mapping.NewSystem(w, platform, netmodel.NewDefault(),
		mapping.Config{Policy: mapping.EndUser, PingTargets: 500})

	// Low-level name servers inside two clusters, on distinct loopback
	// addresses sharing one port (referral glue carries only the IP).
	low, err := authority.New("b.cdn.example.net", system)
	check(err)
	lowA, err := dnsserver.Listen("127.0.0.2:0", low)
	check(err)
	defer lowA.Close()
	go serve(lowA)
	port := lowA.Addr().(*net.UDPAddr).Port
	lowB, err := dnsserver.Listen("127.0.0.3:"+strconv.Itoa(port), low)
	check(err)
	defer lowB.Close()
	go serve(lowB)

	// The top level: customer CNAME hosting + LDNS-aware delegation.
	top, err := authority.NewTopLevel("cdn.example.net", system)
	check(err)
	check(top.AddSite(authority.NSSite{
		Host: "n1.ns.cdn.example.net", Addr: netip.MustParseAddr("127.0.0.2"),
		Deployment: platform.Deployments[0],
	}))
	check(top.AddSite(authority.NSSite{
		Host: "n2.ns.cdn.example.net", Addr: netip.MustParseAddr("127.0.0.3"),
		Deployment: platform.Deployments[1],
	}))
	check(top.RegisterCustomer("www.whitehouse.example", "e2561.b.cdn.example.net"))

	topSrv, err := dnsserver.Listen("127.0.0.1:0", top)
	check(err)
	defer topSrv.Close()
	go serve(topSrv)

	// A client in the world resolves the customer domain iteratively.
	blk := w.Blocks[123]
	fmt.Printf("client block %v in %s (%s)\n\n", blk.Prefix, blk.City, blk.Country.Code())
	it := &dnsclient.Iterative{
		Client: dnsclient.Client{Timeout: 2 * time.Second},
		Root:   topSrv.Addr().String(),
		Port:   port,
	}
	resp, trace, err := it.Resolve(context.Background(),
		"www.whitehouse.example", dnsmsg.TypeA, blk.Prefix)
	check(err)

	fmt.Println("resolution trace:")
	for i, s := range trace.Servers {
		fmt.Printf("  step %d: queried %s\n", i+1, s)
	}
	for _, c := range trace.CNAMEs {
		fmt.Printf("  followed CNAME -> %s\n", c)
	}
	for _, r := range trace.Referrals {
		fmt.Printf("  followed referral -> %s\n", r)
	}
	fmt.Println("\nfinal answer:")
	fmt.Print(resp.String())
}

func serve(s *dnsserver.Server) {
	if err := s.Serve(); err != nil {
		log.Println(err)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
