// Quickstart: build a synthetic Internet, a CDN platform, and a mapping
// system; then resolve a content domain the way an LDNS would — once
// without and once with the EDNS0 client-subnet option — and compare the
// assignments.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"eum/internal/cdn"
	"eum/internal/geo"
	"eum/internal/mapping"
	"eum/internal/netmodel"
	"eum/internal/world"
)

func main() {
	// 1. A world: countries, ASes, /24 client blocks, ISP resolvers and
	// anycast public resolvers, with realistic demand and geography.
	w := world.MustGenerate(world.Config{Seed: 42, NumBlocks: 5000})
	fmt.Printf("world: %d client blocks, %d LDNSes, %d ASes, %.1f%% of demand on public resolvers\n",
		len(w.Blocks), len(w.LDNSes), len(w.ASes), 100*w.PublicDemandFraction())

	// 2. A CDN platform: deployment locations with servers.
	platform := cdn.MustGenerateUniverse(w, cdn.Config{Seed: 42, NumDeployments: 500})
	fmt.Printf("platform: %d deployments, %d servers in %d countries\n",
		len(platform.Deployments), platform.NumServers(), len(platform.Countries()))

	// 3. The mapping system, running the end-user mapping policy: it
	// routes by client subnet when the query carries one, and by the
	// LDNS otherwise.
	system := mapping.NewSystem(w, platform, netmodel.NewDefault(), mapping.Config{
		Policy:      mapping.EndUser,
		PingTargets: 500,
	})

	// Pick a client whose resolver is far away: the case end-user
	// mapping exists for.
	var client *world.ClientBlock
	for _, b := range w.Blocks {
		if b.LDNS.IsPublic() && b.ClientLDNSDistance() > 3000 {
			client = b
			break
		}
	}
	if client == nil {
		log.Fatal("no far public-resolver client found")
	}
	fmt.Printf("\nclient block %v in %s (%s), using public resolver %s/%s %.0f miles away\n",
		client.Prefix, client.City, client.Country.Code(),
		client.LDNS.Provider, client.LDNS.Site, client.ClientLDNSDistance())

	// 4a. Traditional resolution: the authoritative server only sees the
	// LDNS address.
	nsResp, err := system.Map(mapping.Request{
		Domain: "www.cdn.example.net",
		LDNS:   client.LDNS.Addr,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4b. ECS resolution: the LDNS forwards the client's /24.
	euResp, err := system.Map(mapping.Request{
		Domain:       "www.cdn.example.net",
		LDNS:         client.LDNS.Addr,
		ClientSubnet: client.Prefix,
	})
	if err != nil {
		log.Fatal(err)
	}

	show := func(label string, r *mapping.Response) {
		fmt.Printf("%-18s -> %s (%.0f miles from client), servers %v, ecs-scope /%d, ttl %v\n",
			label, r.Deployment.Name,
			geo.Distance(r.Deployment.Loc, client.Loc),
			addrsOf(r), r.ScopePrefix, r.TTL)
	}
	fmt.Println()
	show("without ECS (NS)", nsResp)
	show("with ECS (EU)", euResp)
}

func addrsOf(r *mapping.Response) []string {
	var out []string
	for _, s := range r.Servers {
		out = append(out, s.Addr.String())
	}
	return out
}
