// Rollout replays the paper's §4 experience: RUM measurements from clients
// of public resolvers before, during and after the end-user mapping
// roll-out (Mar 28 - Apr 15, 2014), reporting the headline improvements —
// mapping distance, RTT, TTFB and content download time — split into the
// paper's high/low expectation country groups.
//
//	go run ./examples/rollout
package main

import (
	"fmt"
	"log"

	"eum/internal/cdn"
	"eum/internal/netmodel"
	"eum/internal/simulation"
	"eum/internal/world"
)

func main() {
	w := world.MustGenerate(world.Config{Seed: 7, NumBlocks: 8000})
	platform := cdn.MustGenerateUniverse(w, cdn.Config{Seed: 7, NumDeployments: 600})
	net := netmodel.NewDefault()

	cfg := simulation.DefaultRolloutConfig()
	cfg.DailyMeasurements = 200
	fmt.Printf("simulating %s .. %s (roll-out %s .. %s)...\n",
		cfg.Start.Format("2006-01-02"), cfg.End.Format("2006-01-02"),
		cfg.RolloutStart.Format("2006-01-02"), cfg.RolloutEnd.Format("2006-01-02"))

	res, err := simulation.RunRollout(w, platform, net, cfg)
	if err != nil {
		log.Fatal(err)
	}

	metrics := []struct {
		name string
		unit string
		g    *simulation.GroupSeries
	}{
		{"mapping distance", "mi", &res.MappingDistance},
		{"RTT", "ms", &res.RTT},
		{"TTFB", "ms", &res.TTFB},
		{"content download", "ms", &res.Download},
	}
	for _, group := range []struct {
		label string
		high  bool
	}{{"HIGH expectation countries", true}, {"LOW expectation countries", false}} {
		fmt.Printf("\n%s:\n", group.label)
		for _, m := range metrics {
			before, after := simulation.BeforeAfter(m.g, group.high, res)
			fmt.Printf("  %-17s mean %7.1f -> %7.1f %-3s (%.1fx better, p75 %.0f -> %.0f)\n",
				m.name, before.Mean(), after.Mean(), m.unit,
				before.Mean()/after.Mean(), before.Percentile(75), after.Percentile(75))
		}
	}

	// The daily timeline around the roll-out window, like Fig 13.
	fmt.Println("\nhigh-expectation daily mean mapping distance (weekly samples):")
	days := res.MappingDistance.High.DailyMeans()
	for i, d := range days {
		if i%7 != 0 {
			continue
		}
		bar := barFor(d.Mean, 25)
		fmt.Printf("  %s %6.0f mi %s\n", d.Start.Format("Jan 02"), d.Mean, bar)
	}
}

func barFor(v float64, scale float64) string {
	n := int(v / scale / 4)
	if n > 60 {
		n = 60
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
