// Deployments reproduces the paper's §6 what-if study (Fig 25): how much
// does end-user mapping buy a CDN at different deployment scales? It sweeps
// the number of deployment locations and compares the three request-routing
// schemes — NS-based, end-user, and client-aware NS-based mapping — on
// mean, 95th and 99th percentile client latency.
//
//	go run ./examples/deployments
package main

import (
	"fmt"

	"eum/internal/experiments"
	"eum/internal/mapping"
)

func main() {
	fmt.Println("building lab (this takes a few seconds)...")
	lab := experiments.NewLab(experiments.Small, 11)

	cfg := experiments.DefaultFig25Config(experiments.Small)
	cfg.Ns = []int{40, 80, 160, 320, 640}
	cfg.Runs = 4
	pts, _ := experiments.Fig25DeploymentSweep(lab, cfg)

	fmt.Println("\nping latency (ms) by deployment count; lower is better")
	fmt.Printf("%-12s %20s %20s %20s\n", "", "mean", "p95", "p99")
	fmt.Printf("%-12s %6s %6s %6s %6s %6s %6s %6s %6s %6s\n",
		"deployments", "NS", "EU", "CANS", "NS", "EU", "CANS", "NS", "EU", "CANS")
	byN := map[int]map[mapping.Policy]experiments.Fig25Point{}
	for _, p := range pts {
		if byN[p.Deployments] == nil {
			byN[p.Deployments] = map[mapping.Policy]experiments.Fig25Point{}
		}
		byN[p.Deployments][p.Policy] = p
	}
	for _, n := range cfg.Ns {
		m := byN[n]
		fmt.Printf("%-12d %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f\n", n,
			m[mapping.NSBased].MeanMs, m[mapping.EndUser].MeanMs, m[mapping.ClientAwareNS].MeanMs,
			m[mapping.NSBased].P95Ms, m[mapping.EndUser].P95Ms, m[mapping.ClientAwareNS].P95Ms,
			m[mapping.NSBased].P99Ms, m[mapping.EndUser].P99Ms, m[mapping.ClientAwareNS].P99Ms)
	}

	small, large := cfg.Ns[0], cfg.Ns[len(cfg.Ns)-1]
	gapSmall := byN[small][mapping.NSBased].P99Ms - byN[small][mapping.EndUser].P99Ms
	gapLarge := byN[large][mapping.NSBased].P99Ms - byN[large][mapping.EndUser].P99Ms
	fmt.Printf("\nEU's P99 advantage over NS grows from %.1f ms at %d deployments to %.1f ms at %d —\n",
		gapSmall, small, gapLarge, large)
	fmt.Println("a CDN with more deployment locations benefits more from end-user mapping (§6).")
}
