// Scaling walks through the paper's §5 scaling analysis: how many mapping
// units end-user mapping must handle (Figs 21-22), and what turning on the
// EDNS0 client-subnet option does to authoritative DNS query rates
// (Figs 23-24) — the costs that come with the accuracy.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"eum/internal/experiments"
)

func main() {
	fmt.Println("building lab...")
	lab := experiments.NewLab(experiments.Small, 3)

	// How many units must the mapping system measure and decide for?
	cov, _ := experiments.Fig21MappingUnitCoverage(lab)
	fmt.Printf("\ncovering 95%% of demand takes %d LDNSes under NS mapping,\n", cov.LDNS95)
	fmt.Printf("but %d /24 blocks under end-user mapping — a %.0fx blow-up (Fig 21).\n",
		cov.Blocks95, float64(cov.Blocks95)/float64(cov.LDNS95))

	// The /x granularity trade-off.
	rows, rep := experiments.Fig22PrefixTradeoff(lab)
	fmt.Println()
	fmt.Println(rep.Table())
	var p20, p24 experiments.Fig22Row
	for _, r := range rows {
		switch r.PrefixBits {
		case 20:
			p20 = r
		case 24:
			p24 = r
		}
	}
	fmt.Printf("/20 units cut the unit count %.1fx vs /24 while %.0f%% of demand stays in\n",
		float64(p24.Units)/float64(p20.Units), 100*p20.Within100mi)
	fmt.Println("clusters of radius <= 100 miles — the paper's 'worthy option' (§5.1).")

	// The query-rate cost.
	pts, _, err := experiments.Fig23QueryRateIncrease(lab, experiments.Small)
	if err != nil {
		log.Fatal(err)
	}
	pre, post := pts[4], pts[len(pts)-1]
	fmt.Printf("\nDNS query rate at the authoritative servers (Fig 23):\n")
	fmt.Printf("  total:  %7.0f -> %7.0f q/s (%.2fx)\n", pre.AuthQPS, post.AuthQPS, post.AuthQPS/pre.AuthQPS)
	fmt.Printf("  public: %7.0f -> %7.0f q/s (%.2fx)  <- the roll-out's cost\n",
		pre.PublicAuthQPS, post.PublicAuthQPS, post.PublicAuthQPS/pre.PublicAuthQPS)

	buckets, _, err := experiments.Fig24PopularityFactor(lab, experiments.Small)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nquery-rate factor by (domain, LDNS) popularity (Fig 24):")
	for _, b := range buckets {
		fmt.Printf("  %.1f-%.1f q/TTL: %5.1fx  (%d pairs, %.0f%% of pre-roll-out queries)\n",
			b.PopularityLo, b.PopularityHi, b.FactorIncrease, b.Pairs, 100*b.PreQueryShare)
	}
	fmt.Println("popular pairs pay the multiplier; rare ones barely notice (§5.2).")
}
