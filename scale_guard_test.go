package bench

import (
	"testing"

	"eum/internal/cdn"
	"eum/internal/experiments"
	"eum/internal/netmodel"
	"eum/internal/world"
)

// TestSnapshotScaleSmoke drives the Huge-lab codepath at a CI-sized world
// (~50k blocks): partitioned layout, interned arena, warm and one-target
// incremental republishes, and end-user serving off the built map. It also
// guards resident memory — the partition index plus interned tables must
// stay within a small bytes-per-block ceiling, or million-block worlds
// stop fitting. BenchmarkSnapshotScale runs the same experiment at the
// real million-block scale for BENCH_scale.json.
func TestSnapshotScaleSmoke(t *testing.T) {
	w := world.MustGenerate(world.Config{Seed: 11, NumBlocks: 50000})
	p := cdn.MustGenerateUniverse(w, cdn.Config{Seed: 11, NumDeployments: 200, ServersPerDeployment: 4})
	lab := &experiments.Lab{World: w, Platform: p, Net: netmodel.NewDefault()}

	res, _ := experiments.SnapshotScale(lab, experiments.ScaleConfig{
		PingTargets: 1024, PartitionMiles: 50,
	})

	if res.ServedOK != res.ServedTotal || res.ServedTotal == 0 {
		t.Fatalf("served %d/%d sampled queries", res.ServedOK, res.ServedTotal)
	}
	if res.Partitions >= res.Blocks+res.LDNSes {
		t.Fatalf("no clustering: %d partitions for %d endpoints", res.Partitions, res.Blocks+res.LDNSes)
	}
	if res.Tables > 1024+2 {
		t.Fatalf("interning failed: %d tables for 1024 ping targets", res.Tables)
	}
	if res.IncrementalRepublish >= res.FullBuild {
		t.Fatalf("incremental republish (%v) not faster than full build (%v)",
			res.IncrementalRepublish, res.FullBuild)
	}
	// Resident-memory guard: snapshot (index + interned arena) plus the
	// serving index. The arena is bounded by the ping-target set, so the
	// per-block cost shrinks as worlds grow; at 50k blocks it must
	// already be double-digit bytes (the old map-of-slices layout cost
	// hundreds of bytes per endpoint before any table data).
	const ceiling = 160.0
	if res.BytesPerBlock > ceiling {
		t.Fatalf("resident %.1f bytes/block, ceiling %.0f", res.BytesPerBlock, ceiling)
	}
}
