module eum

go 1.22
